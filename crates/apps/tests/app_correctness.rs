//! Correctness tests for the mini-apps: the parallel, message-driven
//! solvers must agree with serial references, and — the property the
//! whole paper rests on — rescaling mid-run must not perturb the
//! computation at all.

use charm_apps::jacobi::reference_jacobi;
use charm_apps::{JacobiApp, JacobiConfig, LeanMdApp, LeanMdConfig};
use charm_rt::{GreedyLb, RescaleMode, RotateLb, RuntimeConfig};

/// Parallel Jacobi must match the serial reference bit-for-bit: the
/// 5-point update reads each neighbour in a fixed order, so blocking
/// must not change a single ulp.
#[test]
fn jacobi_matches_serial_reference_exactly() {
    let cfg = JacobiConfig::new(32, 4, 2);
    let mut app = JacobiApp::new(cfg, RuntimeConfig::new(3));
    app.run_window(7).unwrap();
    app.run_window(6).unwrap();
    let parallel = app.gather_grid().unwrap();
    let serial = reference_jacobi(&cfg, 13);
    assert_eq!(parallel.len(), serial.len());
    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        assert!(
            p.to_bits() == s.to_bits(),
            "cell {i}: parallel {p:e} != serial {s:e}"
        );
    }
    app.shutdown();
}

/// Different block decompositions produce the identical grid.
#[test]
fn jacobi_blocking_invariance() {
    let run = |bx, by, pes| {
        let cfg = JacobiConfig::new(24, bx, by);
        let mut app = JacobiApp::new(cfg, RuntimeConfig::new(pes));
        app.run_window(9).unwrap();
        let g = app.gather_grid().unwrap();
        app.shutdown();
        g
    };
    let a = run(1, 1, 1);
    let b = run(4, 4, 4);
    let c = run(2, 6, 3);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

/// THE paper property: shrink + expand mid-run leaves the numerical
/// state bit-identical to an uninterrupted run.
#[test]
fn jacobi_rescale_equivalence_is_bitwise() {
    let cfg = JacobiConfig::new(32, 4, 4);

    // Uninterrupted run: 30 iterations on 4 PEs.
    let mut plain = JacobiApp::new(cfg, RuntimeConfig::new(4));
    for _ in 0..3 {
        plain.run_window(10).unwrap();
    }
    let reference = plain.gather_grid().unwrap();
    plain.shutdown();

    // Rescaled run: shrink to 2 after 10 iters, expand to 6 after 20.
    let mut elastic = JacobiApp::new(cfg, RuntimeConfig::new(4));
    elastic.run_window(10).unwrap();
    let s = elastic.driver.rescale(2);
    assert_eq!(s.to_pes, 2);
    elastic.run_window(10).unwrap();
    let e = elastic.driver.rescale(6);
    assert_eq!(e.to_pes, 6);
    elastic.run_window(10).unwrap();
    let rescaled = elastic.gather_grid().unwrap();
    elastic.shutdown();

    assert_eq!(reference.len(), rescaled.len());
    for (i, (a, b)) in reference.iter().zip(&rescaled).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "cell {i} diverged after rescale: {a:e} vs {b:e}"
        );
    }
}

/// Residual decreases monotonically over windows for the heat problem.
#[test]
fn jacobi_residual_decreases() {
    let cfg = JacobiConfig::new(32, 2, 2);
    let mut app = JacobiApp::new(cfg, RuntimeConfig::new(2));
    let r1 = app.run_window(10).unwrap().values[0];
    let r2 = app.run_window(10).unwrap().values[0];
    let r3 = app.run_window(10).unwrap().values[0];
    assert!(
        r1 > r2 && r2 > r3,
        "residuals not decreasing: {r1} {r2} {r3}"
    );
    app.shutdown();
}

/// Checksum is conserved by load balancing (migration does not touch
/// numerical state).
#[test]
fn jacobi_checksum_invariant_under_migration() {
    let cfg = JacobiConfig::new(24, 4, 4);
    let mut app = JacobiApp::new(cfg, RuntimeConfig::new(4));
    app.run_window(5).unwrap();
    let before = app.checksum().unwrap();
    app.driver.load_balance(&RotateLb);
    let after = app.checksum().unwrap();
    assert_eq!(before.to_bits(), after.to_bits());
    app.shutdown();
}

/// LeanMD determinism: two identical runs yield identical checksums.
#[test]
fn leanmd_is_deterministic() {
    let run = |pes| {
        let cfg = LeanMdConfig::new((2, 2, 2), 6);
        let mut app = LeanMdApp::new(cfg, RuntimeConfig::new(pes));
        app.run_window(5).unwrap();
        let c = app.checksum().unwrap();
        app.shutdown();
        c
    };
    let a = run(2);
    let b = run(2);
    assert_eq!(a.to_bits(), b.to_bits());
}

/// LeanMD rescale equivalence: positions after shrink+expand match an
/// uninterrupted run. (Force summation order within a cell is fixed;
/// neighbour maps iterate in arbitrary order, so we allow tiny float
/// slack from neighbour-accumulation reordering.)
#[test]
fn leanmd_rescale_equivalence() {
    let cfg = LeanMdConfig::new((3, 2, 2), 5);
    let mut plain = LeanMdApp::new(cfg, RuntimeConfig::new(4));
    plain.run_window(4).unwrap();
    plain.run_window(4).unwrap();
    let reference = plain.checksum().unwrap();
    plain.shutdown();

    let mut elastic = LeanMdApp::new(cfg, RuntimeConfig::new(4));
    elastic.run_window(4).unwrap();
    elastic.driver.rescale(2);
    elastic.run_window(4).unwrap();
    let rescaled = elastic.checksum().unwrap();
    elastic.shutdown();

    let rel = (reference - rescaled).abs() / reference.abs().max(1.0);
    assert!(
        rel < 1e-9,
        "leanmd diverged after rescale: {reference} vs {rescaled} (rel {rel:e})"
    );
}

/// Kinetic energy grows from zero once atoms start interacting.
#[test]
fn leanmd_kinetic_energy_evolves() {
    let cfg = LeanMdConfig::new((2, 2, 1), 8);
    let mut app = LeanMdApp::new(cfg, RuntimeConfig::new(2));
    let e1 = app.run_window(3).unwrap().values[0];
    assert!(e1 > 0.0, "atoms should be moving, ke = {e1}");
    assert!(e1.is_finite(), "integration must stay finite");
    app.shutdown();
}

/// Rescale overhead stages are populated per protocol for a real
/// application: full restart checkpoints the whole grid, incremental
/// moves only the evacuated blocks and skips checkpoint/restore.
#[test]
fn jacobi_rescale_report_has_all_stages() {
    let cfg = JacobiConfig::new(64, 4, 4);
    let mut app = JacobiApp::new(
        cfg,
        RuntimeConfig::new(4).with_rescale_mode(RescaleMode::FullRestart),
    );
    app.run_window(5).unwrap();
    let report = app.driver.rescale(2);
    assert!(
        report.checkpoint_bytes > cfg.state_bytes() / 2,
        "checkpoint should carry the grid"
    );
    assert!(report.stages.checkpoint.as_secs() > 0.0);
    assert!(report.stages.restore.as_secs() > 0.0);
    assert!(report.migrated > 0, "shrink must evacuate blocks");
    app.shutdown();

    let mut app = JacobiApp::new(cfg, RuntimeConfig::new(4));
    app.run_window(5).unwrap();
    let report = app.driver.rescale(2);
    assert_eq!(report.mode, RescaleMode::Incremental);
    assert_eq!(report.checkpoint_bytes, 0, "incremental never checkpoints");
    assert!(
        report.bytes_moved > 0 && report.bytes_moved < cfg.state_bytes(),
        "incremental moves only evacuated blocks ({} of {} bytes)",
        report.bytes_moved,
        cfg.state_bytes()
    );
    assert!(report.migrated > 0, "shrink must evacuate blocks");
    app.shutdown();
}

/// CCS-signalled rescale applied between windows, like the operator does.
#[test]
fn jacobi_ccs_signal_between_windows() {
    let cfg = JacobiConfig::new(32, 4, 4);
    let mut app = JacobiApp::new(cfg, RuntimeConfig::new(4));
    let client = app.driver.rt.ccs_client();
    app.run_window(5).unwrap();
    let ack = client.request_rescale(2);
    // The signal does nothing until the boundary poll.
    assert_eq!(app.driver.num_pes(), 4);
    let report = app.driver.poll_rescale(&GreedyLb).expect("pending");
    assert_eq!(report.to_pes, 2);
    assert!(ack.recv_timeout(std::time::Duration::from_secs(5)).is_ok());
    // Computation continues unharmed.
    let wr = app.run_window(5).unwrap();
    assert_eq!(wr.end_iter, 10);
    app.shutdown();
}
