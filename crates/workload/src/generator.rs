//! Seeded synthetic workload generators.
//!
//! * [`generate_workload`] — the paper's §4.3.1 random generator: `n`
//!   jobs drawn uniformly from the 4 size classes with priorities 1–5,
//!   ChaCha8-seeded so every experiment is reproducible bit-for-bit.
//!   Arrivals are all at the epoch; space them with
//!   [`WorkloadSpec::spaced_every`] (fixed gap) or replace the whole
//!   arrival process with [`poisson_workload`].
//! * [`poisson_workload`] — the same class/priority draws but with
//!   exponential (Poisson-process) interarrivals, the bursty
//!   trace-shaped arrival model of the malleable-scheduling
//!   literature.

use hpc_metrics::Duration;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::spec::{JobSpec, SizeClass, WorkloadSpec};

/// Zero-pad width for job indices: wide enough that lexicographic name
/// order equals numeric order for `n_jobs` jobs (`job99`/`job100` would
/// otherwise invert), never narrower than the historical 2 digits.
pub fn pad_width(n_jobs: usize) -> usize {
    let max_index = n_jobs.saturating_sub(1).max(1);
    let digits = (max_index.ilog10() + 1) as usize;
    digits.max(2)
}

/// Generates the paper's random workload for `seed`: `n_jobs` jobs,
/// uniformly drawn size classes, priorities 1..=5, names `job00`,
/// `job01`, … zero-padded per [`pad_width`] so name order always equals
/// submission order. All arrivals are at the epoch.
pub fn generate_workload(seed: u64, n_jobs: usize) -> WorkloadSpec {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let width = pad_width(n_jobs);
    let jobs = (0..n_jobs)
        .map(|i| {
            let class = SizeClass::ALL[rng.gen_range(0..SizeClass::ALL.len())];
            let priority = rng.gen_range(1..=5);
            JobSpec::of_class(format!("job{i:0width$}"), class, priority)
        })
        .collect();
    WorkloadSpec::new(jobs)
}

/// Stream separator so the arrival process draws from its own RNG —
/// the class/priority mix stays identical to [`generate_workload`] at
/// the same seed.
const ARRIVAL_STREAM: u64 = 0xA771_1AA5_57EA_0001;

/// Like [`generate_workload`], but arrivals follow a Poisson process
/// with mean interarrival `mean_gap`: bursts and lulls instead of a
/// metronome. The per-job class/priority draws are identical to the
/// fixed-gap generator at the same seed (arrivals come from a separate
/// RNG stream). Deterministic per seed.
pub fn poisson_workload(seed: u64, n_jobs: usize, mean_gap: Duration) -> WorkloadSpec {
    let mean = mean_gap.as_secs();
    assert!(mean >= 0.0, "mean interarrival must be nonnegative");
    let mut wl = generate_workload(seed, n_jobs);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ARRIVAL_STREAM);
    let mut at = 0.0f64;
    for (i, job) in wl.jobs.iter_mut().enumerate() {
        // Inverse-CDF exponential draw; 1 - u keeps ln() finite.
        let u: f64 = rng.gen_range(0.0..1.0);
        if i > 0 {
            at += -mean * (1.0 - u).ln();
        }
        job.arrival = Duration::from_secs(at);
    }
    wl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seed_deterministic() {
        let a = generate_workload(42, 16);
        let b = generate_workload(42, 16);
        assert_eq!(a, b);
        let c = generate_workload(43, 16);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn bounds_come_from_the_class() {
        for job in generate_workload(7, 64).jobs {
            assert_eq!(
                (job.min_replicas(), job.max_replicas()),
                job.class().expect("class job").replica_bounds()
            );
            assert!((1..=5).contains(&job.priority));
        }
    }

    #[test]
    fn all_classes_appear_over_many_draws() {
        let wl = generate_workload(1, 200);
        for class in SizeClass::ALL {
            assert!(
                wl.jobs.iter().any(|j| j.class() == Some(class)),
                "{class} never generated"
            );
        }
    }

    #[test]
    fn names_are_ordered_and_unique_at_any_scale() {
        let small = generate_workload(5, 16);
        assert_eq!(small.jobs[0].name, "job00");
        assert_eq!(small.jobs[15].name, "job15");

        // Past 100 jobs the pad widens so name order stays submission
        // order (job099 < job100 lexicographically).
        for n in [16usize, 100, 101, 1000, 2500] {
            let wl = generate_workload(5, n);
            let names: Vec<&str> = wl.jobs.iter().map(|j| j.name.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, names, "n={n}: lexicographic != submission order");
            let mut dedup = names.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), names.len(), "n={n}: duplicate names");
            assert!(wl.validate().is_ok());
        }
    }

    #[test]
    fn pad_width_tracks_job_count() {
        assert_eq!(pad_width(1), 2);
        assert_eq!(pad_width(16), 2);
        assert_eq!(pad_width(100), 2); // indices 0..=99
        assert_eq!(pad_width(101), 3); // index 100 appears
        assert_eq!(pad_width(1000), 3);
        assert_eq!(pad_width(100_000), 5);
    }

    #[test]
    fn class_and_priority_draws_match_the_paper_generator() {
        // The Poisson generator must reuse the same per-job draw stream
        // for class and priority, so the workload *mix* matches the
        // fixed-gap generator at the same seed (only arrivals differ).
        let fixed = generate_workload(9, 64);
        let pois = poisson_workload(9, 64, Duration::from_secs(30.0));
        for (a, b) in fixed.jobs.iter().zip(&pois.jobs) {
            assert_eq!(a.class(), b.class());
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    fn poisson_arrivals_are_nondecreasing_bursty_and_mean_scaled() {
        let mean = 30.0;
        let n = 2000;
        let wl = poisson_workload(3, n, Duration::from_secs(mean));
        assert!(wl.validate().is_ok());
        assert_eq!(wl.jobs[0].arrival.as_secs(), 0.0);
        let gaps: Vec<f64> = wl
            .jobs
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs())
            .collect();
        assert!(gaps.iter().all(|&g| g >= 0.0));
        let avg = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (avg - mean).abs() < mean * 0.15,
            "mean interarrival {avg} far from {mean}"
        );
        // Exponential interarrivals are bursty: plenty of gaps below
        // half the mean AND above twice the mean (a fixed gap has
        // neither).
        let short = gaps.iter().filter(|&&g| g < mean * 0.5).count();
        let long = gaps.iter().filter(|&&g| g > mean * 2.0).count();
        assert!(short > gaps.len() / 5, "too few short gaps ({short})");
        assert!(long > gaps.len() / 50, "too few long gaps ({long})");
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let a = poisson_workload(11, 100, Duration::from_secs(10.0));
        let b = poisson_workload(11, 100, Duration::from_secs(10.0));
        assert_eq!(a, b);
    }
}
