//! The fault layer of a workload: node failures and spot reclamation.
//!
//! Cloud capacity is not stable — nodes die and spot/preemptible slots
//! get reclaimed (and later returned) by the provider. A [`FaultSpec`]
//! makes those events part of the replayable workload, exactly like
//! arrivals and cancellations: a deterministic, time-ordered list of
//! capacity changes plus the recovery parameters every engine shares
//! (checkpoint interval, retry budget, requeue backoff).
//!
//! Both engines surface each [`FaultEvent`] to the scheduling policy
//! via `SchedulingPolicy::on_fault`, which answers with eviction /
//! requeue / shrink actions until the capacity deficit clears. An empty
//! `FaultSpec` (the default) injects nothing and costs nothing on the
//! replay hot path.

use hpc_metrics::Duration;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What kind of capacity change a [`FaultEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Permanent loss of slots (a node died). Never comes back.
    NodeFail,
    /// Spot reclamation: the provider takes slots away, to be handed
    /// back by a later [`FaultKind::Return`].
    Reclaim,
    /// Reclaimed slots come back (spot capacity returned).
    Return,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::NodeFail => write!(f, "node_fail"),
            FaultKind::Reclaim => write!(f, "reclaim"),
            FaultKind::Return => write!(f, "return"),
        }
    }
}

/// One capacity-change event on the workload timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event fires, relative to the workload epoch (like
    /// `JobSpec::arrival`).
    pub at: Duration,
    /// How many slots the event removes (or returns).
    pub slots: u32,
    /// Loss, reclamation, or return.
    pub kind: FaultKind,
}

/// Why a [`FaultSpec`] is not replayable.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// Events are not sorted by time.
    UnsortedEvents {
        /// 0-based index of the first event observed out of order.
        index: usize,
    },
    /// An event has zero slots or a non-finite/negative time.
    BadEvent {
        /// 0-based index of the offending event.
        index: usize,
    },
    /// A return hands back more slots than are currently reclaimed.
    ReturnExceedsReclaimed {
        /// 0-based index of the offending return event.
        index: usize,
    },
    /// A recovery parameter is out of range (zero checkpoint interval
    /// or backoff, zero retry budget).
    BadRecoveryParams,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnsortedEvents { index } => {
                write!(f, "fault event {index} fires earlier than its predecessor")
            }
            FaultError::BadEvent { index } => {
                write!(f, "fault event {index} has zero slots or a bad time")
            }
            FaultError::ReturnExceedsReclaimed { index } => {
                write!(
                    f,
                    "fault event {index} returns more slots than are reclaimed"
                )
            }
            FaultError::BadRecoveryParams => {
                write!(
                    f,
                    "recovery parameters must be positive (interval, backoff, attempts)"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// What kind of operation-level transient fault a [`FlakyEvent`] is.
///
/// Where [`FaultKind`] models *capacity* loss (nodes and slots), a
/// `FlakyOp` models the control plane's own operations failing — the
/// flakiest part of a real cloud deployment: launches that bounce,
/// executors that crash right after starting, rescales that wedge, and
/// heartbeats that go missing. Each op names a deterministic target so
/// both engines pick the same victim:
///
/// * [`LaunchFail`](FlakyOp::LaunchFail) / [`HeartbeatMiss`](FlakyOp::HeartbeatMiss)
///   / [`StuckRescale`](FlakyOp::StuckRescale) hit the *oldest* running
///   executor (lowest `JobId`).
/// * [`CrashOnStart`](FlakyOp::CrashOnStart) hits the *youngest*
///   running executor (highest `JobId`) — the one most recently
///   admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlakyOp {
    /// The launcher of the oldest running executor fails transiently;
    /// the job is killed and re-queued (a retry, budget permitting).
    LaunchFail,
    /// The youngest running executor crashes right after starting; the
    /// job is killed and re-queued (a retry, budget permitting).
    CrashOnStart,
    /// A rescale of the oldest running executor wedges; the operation
    /// is aborted and the job checkpoint-evicted (rolls back to its
    /// last checkpoint boundary and relaunches).
    StuckRescale,
    /// The oldest running executor misses a heartbeat. Misses accrue in
    /// the health checker; at `health_threshold` consecutive misses the
    /// executor is declared unhealthy and killed-and-requeued.
    HeartbeatMiss,
}

impl std::fmt::Display for FlakyOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlakyOp::LaunchFail => write!(f, "launch_fail"),
            FlakyOp::CrashOnStart => write!(f, "crash_on_start"),
            FlakyOp::StuckRescale => write!(f, "stuck_rescale"),
            FlakyOp::HeartbeatMiss => write!(f, "heartbeat_miss"),
        }
    }
}

/// One operation-level transient fault on the workload timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyEvent {
    /// When the fault fires, relative to the workload epoch.
    pub at: Duration,
    /// Which operation fails.
    pub op: FlakyOp,
}

/// The operation-level transient-fault layer: a deterministic schedule
/// of [`FlakyEvent`]s plus the resilience parameters both engines feed
/// to `elastic-resilience` (circuit breaker, retry budget, health
/// checker). The [`Default`] spec has no events and is zero-cost to
/// replay — engines seed nothing and consult nothing when
/// [`FlakySpec::is_empty`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlakySpec {
    /// Transient faults in time order.
    pub events: Vec<FlakyEvent>,
    /// Consecutive transient faults that trip the cluster circuit
    /// breaker open. While open, flaky operations are not attempted
    /// (the fault is absorbed without killing anyone) until the
    /// cooldown half-opens the breaker. `u32::MAX` effectively
    /// disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening.
    pub breaker_cooldown: Duration,
    /// Initial retry-budget tokens. Every budget-approved retry
    /// withdraws one token; a dry budget denies the retry and the
    /// victim fails permanently — this is what bounds retry storms.
    pub retry_budget: f64,
    /// Tokens deposited per successful job completion.
    pub retry_deposit: f64,
    /// Consecutive heartbeat misses per executor before the health
    /// checker evicts it.
    pub health_threshold: u32,
}

impl Default for FlakySpec {
    fn default() -> Self {
        FlakySpec {
            events: Vec::new(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(120.0),
            retry_budget: 10.0,
            retry_deposit: 0.1,
            health_threshold: 3,
        }
    }
}

impl FlakySpec {
    /// A spec with the given events and default resilience parameters.
    pub fn new(events: Vec<FlakyEvent>) -> Self {
        FlakySpec {
            events,
            ..FlakySpec::default()
        }
    }

    /// `true` when no transient faults are scheduled (replay pays
    /// nothing for the resilience layer).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: sets the breaker trip threshold and cooldown.
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Builder: sets the retry-budget initial balance and per-success
    /// deposit.
    pub fn with_retry_budget(mut self, initial: f64, deposit: f64) -> Self {
        self.retry_budget = initial;
        self.retry_deposit = deposit;
        self
    }

    /// Builder: sets the consecutive-miss health-eviction threshold.
    pub fn with_health_threshold(mut self, threshold: u32) -> Self {
        self.health_threshold = threshold;
        self
    }

    /// A deterministic seeded storm of `count` transient faults spread
    /// uniformly over `horizon`, cycling through the four operation
    /// kinds with seeded jitter. Event times are whole seconds (so
    /// tick-driven replays hit them exactly) and are nudged off
    /// multiples of 30 s — the conventional policy-timer grid — because
    /// the engines order timer firings and fault events differently at
    /// shared instants (same contract as [`FaultSpec::reclamation`]).
    pub fn storm(seed: u64, count: u32, horizon: Duration) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let horizon_s = horizon.as_secs().max(1.0);
        let ops = [
            FlakyOp::LaunchFail,
            FlakyOp::CrashOnStart,
            FlakyOp::StuckRescale,
            FlakyOp::HeartbeatMiss,
        ];
        let mut events: Vec<FlakyEvent> = (0..count)
            .map(|i| {
                let mut at = rng.gen_range(1.0..horizon_s).round().max(1.0);
                if (at as u64).is_multiple_of(30) {
                    at += 1.0;
                }
                FlakyEvent {
                    at: Duration::from_secs(at),
                    op: ops[(i as usize) % ops.len()],
                }
            })
            .collect();
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite fault times"));
        FlakySpec {
            events,
            ..FlakySpec::default()
        }
    }

    /// Builder: divides every event time by `factor` (rounding to whole
    /// seconds) — the flaky-layer side of
    /// `WorkloadSpec::compress_arrivals`.
    ///
    /// # Panics
    /// If `factor` is not finite and positive.
    pub fn compress(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression factor must be finite and > 0, got {factor}"
        );
        for e in &mut self.events {
            e.at = Duration::from_secs((e.at.as_secs() / factor).round());
        }
        self
    }

    /// Checks the engine contract: events sorted by time with finite
    /// nonnegative times, positive thresholds, finite nonnegative
    /// budget parameters, positive cooldown.
    pub fn validate(&self) -> Result<(), FaultError> {
        let cooldown = self.breaker_cooldown.as_secs();
        if self.breaker_threshold == 0
            || self.health_threshold == 0
            || !cooldown.is_finite()
            || cooldown <= 0.0
            || !self.retry_budget.is_finite()
            || self.retry_budget < 0.0
            || !self.retry_deposit.is_finite()
            || self.retry_deposit < 0.0
        {
            return Err(FaultError::BadRecoveryParams);
        }
        let mut prev = Duration::ZERO;
        for (index, e) in self.events.iter().enumerate() {
            if !e.at.as_secs().is_finite() || e.at.as_secs() < 0.0 {
                return Err(FaultError::BadEvent { index });
            }
            if e.at < prev {
                return Err(FaultError::UnsortedEvents { index });
            }
            prev = e.at;
        }
        Ok(())
    }
}

/// The fault layer of a workload: capacity events plus the recovery
/// parameters both engines honor. The [`Default`] spec has no events
/// and is zero-cost to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Capacity-change events in time order.
    pub events: Vec<FaultEvent>,
    /// Operation-level transient faults (flaky launches, crashes,
    /// wedged rescales, missed heartbeats) plus the resilience
    /// parameters that govern how they are retried.
    pub flaky: FlakySpec,
    /// Wall-clock interval between a running job's checkpoints. On a
    /// checkpoint/restart eviction the job resumes from its last
    /// checkpoint instant; work since then is wasted.
    pub checkpoint_interval: Duration,
    /// How many times a job may be killed-and-requeued before it is
    /// marked permanently failed.
    pub max_attempts: u32,
    /// Base delay before a killed job is resubmitted; attempt `k`
    /// (1-based) waits `backoff_base × 2^(min(k, 20)-1)` — the shift
    /// saturates at 20 doublings so pathological attempt counts cannot
    /// overflow to an infinite backoff (see [`FaultSpec::backoff_for`]).
    pub backoff_base: Duration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            events: Vec::new(),
            flaky: FlakySpec::default(),
            checkpoint_interval: Duration::from_secs(300.0),
            max_attempts: 3,
            backoff_base: Duration::from_secs(30.0),
        }
    }
}

impl FaultSpec {
    /// A spec with the given events and default recovery parameters.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultSpec {
            events,
            ..FaultSpec::default()
        }
    }

    /// `true` when no fault events are scheduled (replay is fault-free
    /// and pays nothing for the fault layer). Operation-level transient
    /// faults count: a spec with flaky events is not empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.flaky.is_empty()
    }

    /// Builder: attaches an operation-level transient-fault schedule.
    pub fn with_flaky(mut self, flaky: FlakySpec) -> Self {
        self.flaky = flaky;
        self
    }

    /// The requeue backoff before attempt `attempt` (1-based) re-enters
    /// the queue: `backoff_base × 2^(attempt-1)`, with the shift
    /// saturated at [`FaultSpec::MAX_BACKOFF_SHIFT`] doublings so the
    /// delay stays finite for any attempt count. Both engines call this
    /// one function, so replays cannot diverge on the cap.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(Self::MAX_BACKOFF_SHIFT);
        Duration::from_secs(self.backoff_base.as_secs() * 2f64.powi(shift as i32))
    }

    /// Cap on the exponential-backoff shift: 2^20 × base ≈ 1 year at
    /// the 30 s default — long past any replay horizon, far short of
    /// `f64` overflow.
    pub const MAX_BACKOFF_SHIFT: u32 = 20;

    /// The Young/Daly optimal checkpoint interval
    /// `τ_opt ≈ sqrt(2 × δ × MTBF)` for a per-checkpoint (equivalently,
    /// per-recovery) cost `δ` and a mean time between failures `MTBF`,
    /// rounded to whole seconds (tick-grid friendly) with a 1 s floor.
    ///
    /// Feed `δ` from the measured `OverheadModel::recovery_total` curve
    /// (the `BENCH_rescale.json` calibration) and `MTBF` from the fault
    /// schedule's observed event rate.
    pub fn young_daly_interval(recovery_cost: Duration, mtbf: Duration) -> Duration {
        let delta = recovery_cost.as_secs().max(0.0);
        let mtbf_s = mtbf.as_secs().max(0.0);
        Duration::from_secs((2.0 * delta * mtbf_s).sqrt().round().max(1.0))
    }

    /// Builder: sets the checkpoint interval to the Young/Daly optimum
    /// for the given measured recovery cost and fault MTBF — the
    /// auto-tuned alternative to hand-picking
    /// [`FaultSpec::with_checkpoint_interval`].
    pub fn tuned_checkpoint_interval(self, recovery_cost: Duration, mtbf: Duration) -> Self {
        let interval = Self::young_daly_interval(recovery_cost, mtbf);
        self.with_checkpoint_interval(interval)
    }

    /// Builder: sets the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Builder: sets the kill-and-requeue retry budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Builder: sets the base requeue backoff.
    pub fn with_backoff_base(mut self, backoff: Duration) -> Self {
        self.backoff_base = backoff;
        self
    }

    /// A deterministic seeded spot-reclamation trace: `pairs`
    /// drop/return pairs of `slots` slots each, spread over `horizon`
    /// with seeded jitter, each outage lasting `outage`. Event times
    /// are whole seconds so tick-driven replays hit them exactly.
    pub fn reclamation(
        seed: u64,
        pairs: u32,
        slots: u32,
        horizon: Duration,
        outage: Duration,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(2 * pairs as usize);
        let horizon_s = horizon.as_secs().max(1.0);
        let outage_s = outage.as_secs().max(1.0).round();
        let spacing = horizon_s / (f64::from(pairs) + 1.0);
        for i in 0..pairs {
            let base = spacing * f64::from(i + 1);
            let jitter = rng.gen_range(-0.25..0.25) * spacing;
            let at = (base + jitter).max(1.0).round();
            events.push(FaultEvent {
                at: Duration::from_secs(at),
                slots,
                kind: FaultKind::Reclaim,
            });
            events.push(FaultEvent {
                at: Duration::from_secs(at + outage_s),
                slots,
                kind: FaultKind::Return,
            });
        }
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite fault times"));
        FaultSpec {
            events,
            ..FaultSpec::default()
        }
    }

    /// Builder: divides every event time (capacity and flaky) by
    /// `factor` (rounding to whole seconds) — the fault-layer side of
    /// `WorkloadSpec::compress_arrivals`.
    ///
    /// # Panics
    /// If `factor` is not finite and positive.
    pub fn compress(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression factor must be finite and > 0, got {factor}"
        );
        for e in &mut self.events {
            e.at = Duration::from_secs((e.at.as_secs() / factor).round());
        }
        self.flaky = self.flaky.compress(factor);
        self
    }

    /// Checks the engine contract: events sorted by time with positive
    /// slots and finite nonnegative times, every return covered by
    /// outstanding reclaimed slots, positive recovery parameters.
    pub fn validate(&self) -> Result<(), FaultError> {
        let ok = |d: Duration| d.as_secs().is_finite() && d.as_secs() > 0.0;
        if !ok(self.checkpoint_interval) || !ok(self.backoff_base) || self.max_attempts == 0 {
            return Err(FaultError::BadRecoveryParams);
        }
        let mut prev = Duration::ZERO;
        let mut reclaimed: u64 = 0;
        for (index, e) in self.events.iter().enumerate() {
            if e.slots == 0 || !e.at.as_secs().is_finite() || e.at.as_secs() < 0.0 {
                return Err(FaultError::BadEvent { index });
            }
            if e.at < prev {
                return Err(FaultError::UnsortedEvents { index });
            }
            prev = e.at;
            match e.kind {
                FaultKind::Reclaim => reclaimed += u64::from(e.slots),
                FaultKind::Return => {
                    if u64::from(e.slots) > reclaimed {
                        return Err(FaultError::ReturnExceedsReclaimed { index });
                    }
                    reclaimed -= u64::from(e.slots);
                }
                FaultKind::NodeFail => {}
            }
        }
        self.flaky.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: f64, slots: u32, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: Duration::from_secs(at),
            slots,
            kind,
        }
    }

    #[test]
    fn default_spec_is_empty_and_valid() {
        let spec = FaultSpec::default();
        assert!(spec.is_empty());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validate_catches_each_contract_violation() {
        let unsorted = FaultSpec {
            events: vec![
                ev(100.0, 4, FaultKind::Reclaim),
                ev(50.0, 4, FaultKind::Return),
            ],
            ..FaultSpec::default()
        };
        assert_eq!(
            unsorted.validate(),
            Err(FaultError::UnsortedEvents { index: 1 })
        );

        let zero = FaultSpec {
            events: vec![ev(10.0, 0, FaultKind::NodeFail)],
            ..FaultSpec::default()
        };
        assert_eq!(zero.validate(), Err(FaultError::BadEvent { index: 0 }));

        let uncovered = FaultSpec {
            events: vec![
                ev(10.0, 4, FaultKind::Reclaim),
                ev(20.0, 8, FaultKind::Return),
            ],
            ..FaultSpec::default()
        };
        assert_eq!(
            uncovered.validate(),
            Err(FaultError::ReturnExceedsReclaimed { index: 1 })
        );

        // Node failures never come back, so they do not fund returns.
        let nodefail = FaultSpec {
            events: vec![
                ev(10.0, 4, FaultKind::NodeFail),
                ev(20.0, 4, FaultKind::Return),
            ],
            ..FaultSpec::default()
        };
        assert_eq!(
            nodefail.validate(),
            Err(FaultError::ReturnExceedsReclaimed { index: 1 })
        );

        let bad_params = FaultSpec {
            max_attempts: 0,
            ..FaultSpec::default()
        };
        assert_eq!(bad_params.validate(), Err(FaultError::BadRecoveryParams));
    }

    #[test]
    fn reclamation_generator_is_deterministic_and_valid() {
        let horizon = Duration::from_secs(10_000.0);
        let outage = Duration::from_secs(600.0);
        let a = FaultSpec::reclamation(7, 4, 8, horizon, outage);
        let b = FaultSpec::reclamation(7, 4, 8, horizon, outage);
        assert_eq!(a, b, "same seed, same trace");
        assert_eq!(a.events.len(), 8);
        assert!(a.validate().is_ok());
        // Whole-second event times (tick-grid friendly).
        for e in &a.events {
            assert_eq!(e.at.as_secs().fract(), 0.0);
        }
        // Every drop is eventually returned.
        let net: i64 = a
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Reclaim => -i64::from(e.slots),
                FaultKind::Return => i64::from(e.slots),
                FaultKind::NodeFail => 0,
            })
            .sum();
        assert_eq!(net, 0);
        let c = FaultSpec::reclamation(8, 4, 8, horizon, outage);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let spec = FaultSpec::default(); // 30 s base
        assert_eq!(spec.backoff_for(1).as_secs(), 30.0);
        assert_eq!(spec.backoff_for(2).as_secs(), 60.0);
        assert_eq!(spec.backoff_for(3).as_secs(), 120.0);
        // The shift caps at MAX_BACKOFF_SHIFT doublings...
        let cap = 30.0 * 2f64.powi(FaultSpec::MAX_BACKOFF_SHIFT as i32);
        assert_eq!(spec.backoff_for(21).as_secs(), cap);
        assert_eq!(spec.backoff_for(22).as_secs(), cap);
        // ...so even absurd attempt counts stay finite (the old
        // `base × 2^(k-1)` overflowed to infinity here).
        assert_eq!(spec.backoff_for(u32::MAX).as_secs(), cap);
        assert!(spec.backoff_for(u32::MAX).as_secs().is_finite());
    }

    #[test]
    fn young_daly_interval_matches_the_formula() {
        // δ = 50 s, MTBF = 10 000 s → sqrt(2·50·10000) = 1000 s.
        let tau = FaultSpec::young_daly_interval(
            Duration::from_secs(50.0),
            Duration::from_secs(10_000.0),
        );
        assert_eq!(tau.as_secs(), 1000.0);
        // Degenerate inputs floor at 1 s instead of producing 0.
        let floor = FaultSpec::young_daly_interval(Duration::ZERO, Duration::from_secs(100.0));
        assert_eq!(floor.as_secs(), 1.0);
        let tuned = FaultSpec::default()
            .tuned_checkpoint_interval(Duration::from_secs(50.0), Duration::from_secs(10_000.0));
        assert_eq!(tuned.checkpoint_interval.as_secs(), 1000.0);
        assert!(tuned.validate().is_ok());
    }

    #[test]
    fn flaky_storm_is_deterministic_valid_and_off_the_timer_grid() {
        let horizon = Duration::from_secs(5_000.0);
        let a = FlakySpec::storm(3, 16, horizon);
        let b = FlakySpec::storm(3, 16, horizon);
        assert_eq!(a, b, "same seed, same storm");
        assert_eq!(a.events.len(), 16);
        assert!(a.validate().is_ok());
        for e in &a.events {
            assert_eq!(e.at.as_secs().fract(), 0.0, "whole-second times");
            assert_ne!(e.at.as_secs() as u64 % 30, 0, "off the 30 s timer grid");
        }
        // All four operation kinds appear in a 16-event storm.
        for op in [
            FlakyOp::LaunchFail,
            FlakyOp::CrashOnStart,
            FlakyOp::StuckRescale,
            FlakyOp::HeartbeatMiss,
        ] {
            assert!(a.events.iter().any(|e| e.op == op), "missing {op}");
        }
        let c = FlakySpec::storm(4, 16, horizon);
        assert_ne!(a, c, "different seed, different storm");
    }

    #[test]
    fn flaky_validate_catches_bad_params_and_unsorted_events() {
        let unsorted = FlakySpec::new(vec![
            FlakyEvent {
                at: Duration::from_secs(100.0),
                op: FlakyOp::LaunchFail,
            },
            FlakyEvent {
                at: Duration::from_secs(50.0),
                op: FlakyOp::CrashOnStart,
            },
        ]);
        assert_eq!(
            unsorted.validate(),
            Err(FaultError::UnsortedEvents { index: 1 })
        );
        let bad = FlakySpec::default().with_breaker(0, Duration::from_secs(60.0));
        assert_eq!(bad.validate(), Err(FaultError::BadRecoveryParams));
        let bad = FlakySpec::default().with_retry_budget(-1.0, 0.1);
        assert_eq!(bad.validate(), Err(FaultError::BadRecoveryParams));
        let bad = FlakySpec::default().with_health_threshold(0);
        assert_eq!(bad.validate(), Err(FaultError::BadRecoveryParams));
        // A FaultSpec carrying an invalid flaky layer fails validation.
        let carrier = FaultSpec::default()
            .with_flaky(FlakySpec::default().with_breaker(0, Duration::from_secs(60.0)));
        assert_eq!(carrier.validate(), Err(FaultError::BadRecoveryParams));
        assert!(!carrier.is_empty() || carrier.flaky.is_empty());
        // A spec with only flaky events is not empty.
        let flaky_only =
            FaultSpec::default().with_flaky(FlakySpec::storm(1, 2, Duration::from_secs(100.0)));
        assert!(!flaky_only.is_empty());
    }

    #[test]
    fn compress_divides_event_times() {
        let spec = FaultSpec {
            events: vec![
                ev(600.0, 8, FaultKind::Reclaim),
                ev(1200.0, 8, FaultKind::Return),
            ],
            ..FaultSpec::default()
        }
        .with_flaky(FlakySpec::new(vec![FlakyEvent {
            at: Duration::from_secs(900.0),
            op: FlakyOp::HeartbeatMiss,
        }]))
        .compress(10.0);
        assert_eq!(spec.events[0].at.as_secs(), 60.0);
        assert_eq!(spec.events[1].at.as_secs(), 120.0);
        assert_eq!(spec.flaky.events[0].at.as_secs(), 90.0);
        assert!(spec.validate().is_ok());
    }
}
