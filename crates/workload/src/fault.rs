//! The fault layer of a workload: node failures and spot reclamation.
//!
//! Cloud capacity is not stable — nodes die and spot/preemptible slots
//! get reclaimed (and later returned) by the provider. A [`FaultSpec`]
//! makes those events part of the replayable workload, exactly like
//! arrivals and cancellations: a deterministic, time-ordered list of
//! capacity changes plus the recovery parameters every engine shares
//! (checkpoint interval, retry budget, requeue backoff).
//!
//! Both engines surface each [`FaultEvent`] to the scheduling policy
//! via `SchedulingPolicy::on_fault`, which answers with eviction /
//! requeue / shrink actions until the capacity deficit clears. An empty
//! `FaultSpec` (the default) injects nothing and costs nothing on the
//! replay hot path.

use hpc_metrics::Duration;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What kind of capacity change a [`FaultEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Permanent loss of slots (a node died). Never comes back.
    NodeFail,
    /// Spot reclamation: the provider takes slots away, to be handed
    /// back by a later [`FaultKind::Return`].
    Reclaim,
    /// Reclaimed slots come back (spot capacity returned).
    Return,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::NodeFail => write!(f, "node_fail"),
            FaultKind::Reclaim => write!(f, "reclaim"),
            FaultKind::Return => write!(f, "return"),
        }
    }
}

/// One capacity-change event on the workload timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event fires, relative to the workload epoch (like
    /// `JobSpec::arrival`).
    pub at: Duration,
    /// How many slots the event removes (or returns).
    pub slots: u32,
    /// Loss, reclamation, or return.
    pub kind: FaultKind,
}

/// Why a [`FaultSpec`] is not replayable.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// Events are not sorted by time.
    UnsortedEvents {
        /// 0-based index of the first event observed out of order.
        index: usize,
    },
    /// An event has zero slots or a non-finite/negative time.
    BadEvent {
        /// 0-based index of the offending event.
        index: usize,
    },
    /// A return hands back more slots than are currently reclaimed.
    ReturnExceedsReclaimed {
        /// 0-based index of the offending return event.
        index: usize,
    },
    /// A recovery parameter is out of range (zero checkpoint interval
    /// or backoff, zero retry budget).
    BadRecoveryParams,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnsortedEvents { index } => {
                write!(f, "fault event {index} fires earlier than its predecessor")
            }
            FaultError::BadEvent { index } => {
                write!(f, "fault event {index} has zero slots or a bad time")
            }
            FaultError::ReturnExceedsReclaimed { index } => {
                write!(
                    f,
                    "fault event {index} returns more slots than are reclaimed"
                )
            }
            FaultError::BadRecoveryParams => {
                write!(
                    f,
                    "recovery parameters must be positive (interval, backoff, attempts)"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// The fault layer of a workload: capacity events plus the recovery
/// parameters both engines honor. The [`Default`] spec has no events
/// and is zero-cost to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Capacity-change events in time order.
    pub events: Vec<FaultEvent>,
    /// Wall-clock interval between a running job's checkpoints. On a
    /// checkpoint/restart eviction the job resumes from its last
    /// checkpoint instant; work since then is wasted.
    pub checkpoint_interval: Duration,
    /// How many times a job may be killed-and-requeued before it is
    /// marked permanently failed.
    pub max_attempts: u32,
    /// Base delay before a killed job is resubmitted; attempt `k`
    /// (1-based) waits `backoff_base × 2^(k-1)`.
    pub backoff_base: Duration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            events: Vec::new(),
            checkpoint_interval: Duration::from_secs(300.0),
            max_attempts: 3,
            backoff_base: Duration::from_secs(30.0),
        }
    }
}

impl FaultSpec {
    /// A spec with the given events and default recovery parameters.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultSpec {
            events,
            ..FaultSpec::default()
        }
    }

    /// `true` when no fault events are scheduled (replay is fault-free
    /// and pays nothing for the fault layer).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: sets the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Builder: sets the kill-and-requeue retry budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Builder: sets the base requeue backoff.
    pub fn with_backoff_base(mut self, backoff: Duration) -> Self {
        self.backoff_base = backoff;
        self
    }

    /// A deterministic seeded spot-reclamation trace: `pairs`
    /// drop/return pairs of `slots` slots each, spread over `horizon`
    /// with seeded jitter, each outage lasting `outage`. Event times
    /// are whole seconds so tick-driven replays hit them exactly.
    pub fn reclamation(
        seed: u64,
        pairs: u32,
        slots: u32,
        horizon: Duration,
        outage: Duration,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(2 * pairs as usize);
        let horizon_s = horizon.as_secs().max(1.0);
        let outage_s = outage.as_secs().max(1.0).round();
        let spacing = horizon_s / (f64::from(pairs) + 1.0);
        for i in 0..pairs {
            let base = spacing * f64::from(i + 1);
            let jitter = rng.gen_range(-0.25..0.25) * spacing;
            let at = (base + jitter).max(1.0).round();
            events.push(FaultEvent {
                at: Duration::from_secs(at),
                slots,
                kind: FaultKind::Reclaim,
            });
            events.push(FaultEvent {
                at: Duration::from_secs(at + outage_s),
                slots,
                kind: FaultKind::Return,
            });
        }
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite fault times"));
        FaultSpec {
            events,
            ..FaultSpec::default()
        }
    }

    /// Builder: divides every event time by `factor` (rounding to whole
    /// seconds) — the fault-layer side of
    /// `WorkloadSpec::compress_arrivals`.
    ///
    /// # Panics
    /// If `factor` is not finite and positive.
    pub fn compress(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression factor must be finite and > 0, got {factor}"
        );
        for e in &mut self.events {
            e.at = Duration::from_secs((e.at.as_secs() / factor).round());
        }
        self
    }

    /// Checks the engine contract: events sorted by time with positive
    /// slots and finite nonnegative times, every return covered by
    /// outstanding reclaimed slots, positive recovery parameters.
    pub fn validate(&self) -> Result<(), FaultError> {
        let ok = |d: Duration| d.as_secs().is_finite() && d.as_secs() > 0.0;
        if !ok(self.checkpoint_interval) || !ok(self.backoff_base) || self.max_attempts == 0 {
            return Err(FaultError::BadRecoveryParams);
        }
        let mut prev = Duration::ZERO;
        let mut reclaimed: u64 = 0;
        for (index, e) in self.events.iter().enumerate() {
            if e.slots == 0 || !e.at.as_secs().is_finite() || e.at.as_secs() < 0.0 {
                return Err(FaultError::BadEvent { index });
            }
            if e.at < prev {
                return Err(FaultError::UnsortedEvents { index });
            }
            prev = e.at;
            match e.kind {
                FaultKind::Reclaim => reclaimed += u64::from(e.slots),
                FaultKind::Return => {
                    if u64::from(e.slots) > reclaimed {
                        return Err(FaultError::ReturnExceedsReclaimed { index });
                    }
                    reclaimed -= u64::from(e.slots);
                }
                FaultKind::NodeFail => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: f64, slots: u32, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: Duration::from_secs(at),
            slots,
            kind,
        }
    }

    #[test]
    fn default_spec_is_empty_and_valid() {
        let spec = FaultSpec::default();
        assert!(spec.is_empty());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validate_catches_each_contract_violation() {
        let unsorted = FaultSpec {
            events: vec![
                ev(100.0, 4, FaultKind::Reclaim),
                ev(50.0, 4, FaultKind::Return),
            ],
            ..FaultSpec::default()
        };
        assert_eq!(
            unsorted.validate(),
            Err(FaultError::UnsortedEvents { index: 1 })
        );

        let zero = FaultSpec {
            events: vec![ev(10.0, 0, FaultKind::NodeFail)],
            ..FaultSpec::default()
        };
        assert_eq!(zero.validate(), Err(FaultError::BadEvent { index: 0 }));

        let uncovered = FaultSpec {
            events: vec![
                ev(10.0, 4, FaultKind::Reclaim),
                ev(20.0, 8, FaultKind::Return),
            ],
            ..FaultSpec::default()
        };
        assert_eq!(
            uncovered.validate(),
            Err(FaultError::ReturnExceedsReclaimed { index: 1 })
        );

        // Node failures never come back, so they do not fund returns.
        let nodefail = FaultSpec {
            events: vec![
                ev(10.0, 4, FaultKind::NodeFail),
                ev(20.0, 4, FaultKind::Return),
            ],
            ..FaultSpec::default()
        };
        assert_eq!(
            nodefail.validate(),
            Err(FaultError::ReturnExceedsReclaimed { index: 1 })
        );

        let bad_params = FaultSpec {
            max_attempts: 0,
            ..FaultSpec::default()
        };
        assert_eq!(bad_params.validate(), Err(FaultError::BadRecoveryParams));
    }

    #[test]
    fn reclamation_generator_is_deterministic_and_valid() {
        let horizon = Duration::from_secs(10_000.0);
        let outage = Duration::from_secs(600.0);
        let a = FaultSpec::reclamation(7, 4, 8, horizon, outage);
        let b = FaultSpec::reclamation(7, 4, 8, horizon, outage);
        assert_eq!(a, b, "same seed, same trace");
        assert_eq!(a.events.len(), 8);
        assert!(a.validate().is_ok());
        // Whole-second event times (tick-grid friendly).
        for e in &a.events {
            assert_eq!(e.at.as_secs().fract(), 0.0);
        }
        // Every drop is eventually returned.
        let net: i64 = a
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Reclaim => -i64::from(e.slots),
                FaultKind::Return => i64::from(e.slots),
                FaultKind::NodeFail => 0,
            })
            .sum();
        assert_eq!(net, 0);
        let c = FaultSpec::reclamation(8, 4, 8, horizon, outage);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn compress_divides_event_times() {
        let spec = FaultSpec {
            events: vec![
                ev(600.0, 8, FaultKind::Reclaim),
                ev(1200.0, 8, FaultKind::Return),
            ],
            ..FaultSpec::default()
        }
        .compress(10.0);
        assert_eq!(spec.events[0].at.as_secs(), 60.0);
        assert_eq!(spec.events[1].at.as_secs(), 120.0);
        assert!(spec.validate().is_ok());
    }
}
