//! Synthetic malleability annotation for rigid trace jobs.
//!
//! SWF records request one processor count; malleable schedulers need a
//! `[min, max]` envelope. Following the trace-annotation methodology of
//! Zojer, Posner & Özden (*Evaluating Malleable Job Scheduling in HPC
//! Clusters using Real-World Workloads*), the [`MalleabilityModel`]
//! scales the requested count into bounds and the job's work is taken
//! as `runtime × requested` core-seconds under a linear speedup model —
//! so the rigid annotation replays the trace bit-for-bit while elastic
//! annotations open a shrink/expand envelope around it.

/// Maps an SWF requested-processor count to scheduler replica bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MalleabilityModel {
    /// `min_replicas = clamp(ceil(requested × min_factor), 1, cap)`.
    pub min_factor: f64,
    /// `max_replicas = clamp(ceil(requested × max_factor), min, cap)`.
    pub max_factor: f64,
    /// Cluster-size clamp applied to both bounds (a trace from a bigger
    /// machine must still fit the replay cluster).
    pub cap: u32,
}

impl MalleabilityModel {
    /// Rigid annotation: `min = max = requested` (clamped to `cap`) —
    /// the unannotated replay baseline.
    pub fn rigid(cap: u32) -> Self {
        MalleabilityModel {
            min_factor: 1.0,
            max_factor: 1.0,
            cap,
        }
    }

    /// The elastic annotation of the malleable-scheduling literature:
    /// jobs may shrink to half and grow to double their requested size.
    pub fn elastic(cap: u32) -> Self {
        MalleabilityModel {
            min_factor: 0.5,
            max_factor: 2.0,
            cap,
        }
    }

    /// `(min_replicas, max_replicas)` for a job requesting `requested`
    /// processors.
    ///
    /// # Panics
    /// If the model is malformed (`cap == 0`, non-positive or inverted
    /// factors).
    pub fn bounds(&self, requested: u32) -> (u32, u32) {
        assert!(self.cap >= 1, "cap must be at least 1");
        assert!(
            self.min_factor > 0.0 && self.max_factor >= self.min_factor,
            "factors must satisfy 0 < min_factor <= max_factor"
        );
        let scale = |f: f64| (f64::from(requested) * f).ceil() as u32;
        let min = scale(self.min_factor).clamp(1, self.cap);
        let max = scale(self.max_factor).clamp(min, self.cap);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_annotation_is_identity_under_cap() {
        let m = MalleabilityModel::rigid(64);
        assert_eq!(m.bounds(1), (1, 1));
        assert_eq!(m.bounds(32), (32, 32));
        assert_eq!(m.bounds(64), (64, 64));
        // Clamped to the replay cluster.
        assert_eq!(m.bounds(128), (64, 64));
    }

    #[test]
    fn elastic_annotation_opens_an_envelope() {
        let m = MalleabilityModel::elastic(64);
        assert_eq!(m.bounds(8), (4, 16));
        assert_eq!(m.bounds(32), (16, 64));
        // max clamps to the cluster, min stays.
        assert_eq!(m.bounds(48), (24, 64));
        // Odd counts round the half up (a 1-proc job stays runnable).
        assert_eq!(m.bounds(1), (1, 2));
        assert_eq!(m.bounds(5), (3, 10));
    }

    #[test]
    fn min_never_exceeds_max_or_cap() {
        let m = MalleabilityModel {
            min_factor: 1.5,
            max_factor: 1.5,
            cap: 16,
        };
        for req in 1..=64 {
            let (lo, hi) = m.bounds(req);
            assert!(lo >= 1 && lo <= hi && hi <= 16, "req {req}: [{lo},{hi}]");
        }
    }

    #[test]
    #[should_panic(expected = "factors")]
    fn inverted_factors_rejected() {
        let m = MalleabilityModel {
            min_factor: 2.0,
            max_factor: 1.0,
            cap: 8,
        };
        let _ = m.bounds(4);
    }
}
