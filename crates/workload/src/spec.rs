//! The unified workload model.
//!
//! A [`WorkloadSpec`] is an ordered list of [`JobSpec`]s — each with its
//! own arrival time, replica bounds, work estimate, priority and
//! optional cancellation time. Every engine (DES, operator harness,
//! benches) replays the same struct; producers (SWF traces, the paper
//! generator, the Poisson generator) only ever build it.

use hpc_metrics::Duration;

use crate::fault::{FaultError, FaultSpec};

/// The four job size classes of the paper's §4.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// 512² grid, 40 000 steps, replicas ∈ [2, 8].
    Small,
    /// 2048² grid, 40 000 steps, replicas ∈ [4, 16].
    Medium,
    /// 8192² grid, 40 000 steps, replicas ∈ [8, 32].
    Large,
    /// 16 384² grid, 10 000 steps, replicas ∈ [16, 64].
    XLarge,
}

impl SizeClass {
    /// All classes.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::Small,
        SizeClass::Medium,
        SizeClass::Large,
        SizeClass::XLarge,
    ];

    /// Grid dimension (one side of the square grid).
    pub fn grid(self) -> u64 {
        match self {
            SizeClass::Small => 512,
            SizeClass::Medium => 2048,
            SizeClass::Large => 8192,
            SizeClass::XLarge => 16_384,
        }
    }

    /// Total timesteps.
    pub fn steps(self) -> u64 {
        match self {
            SizeClass::XLarge => 10_000,
            _ => 40_000,
        }
    }

    /// `(min_replicas, max_replicas)` per the paper.
    pub fn replica_bounds(self) -> (u32, u32) {
        match self {
            SizeClass::Small => (2, 8),
            SizeClass::Medium => (4, 16),
            SizeClass::Large => (8, 32),
            SizeClass::XLarge => (16, 64),
        }
    }

    /// Grid state size in bytes (f64 cells).
    pub fn state_bytes(self) -> f64 {
        let g = self.grid() as f64;
        g * g * 8.0
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizeClass::Small => write!(f, "small"),
            SizeClass::Medium => write!(f, "medium"),
            SizeClass::Large => write!(f, "large"),
            SizeClass::XLarge => write!(f, "xlarge"),
        }
    }
}

/// Surrogate state bytes per core-second of work for [`JobShape::Malleable`]
/// jobs (traces carry no grid geometry; rescale-overhead models need a
/// byte count, so malleable jobs charge this much serializable state per
/// unit of work).
pub const MALLEABLE_STATE_BYTES_PER_WORK: f64 = 1.0e4;

/// How a job scales: a paper size class (bounds, work and strong-scaling
/// curve all come from the class) or explicit malleable bounds with a
/// linear speedup model (the trace-replay annotation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobShape {
    /// Paper §4.3.1 size class.
    Class(SizeClass),
    /// Synthetic-malleability annotation: linear speedup, `work` in
    /// core-seconds (`work / replicas` seconds of runtime at any
    /// replica count within bounds).
    Malleable {
        /// Smallest worker count the job can run with.
        min_replicas: u32,
        /// Largest worker count the job can use.
        max_replicas: u32,
        /// Total work in core-seconds.
        work: f64,
    },
}

impl JobShape {
    /// Minimum replicas.
    pub fn min_replicas(&self) -> u32 {
        match self {
            JobShape::Class(c) => c.replica_bounds().0,
            JobShape::Malleable { min_replicas, .. } => *min_replicas,
        }
    }

    /// Maximum replicas.
    pub fn max_replicas(&self) -> u32 {
        match self {
            JobShape::Class(c) => c.replica_bounds().1,
            JobShape::Malleable { max_replicas, .. } => *max_replicas,
        }
    }

    /// Total work: timesteps for a class job, core-seconds for a
    /// malleable one (the unit only has to agree with the rate model —
    /// see `sched_sim::ScalingModel::job_rate`).
    pub fn work(&self) -> f64 {
        match self {
            JobShape::Class(c) => c.steps() as f64,
            JobShape::Malleable { work, .. } => *work,
        }
    }

    /// Serializable state in bytes (drives rescale-overhead models).
    pub fn state_bytes(&self) -> f64 {
        match self {
            JobShape::Class(c) => c.state_bytes(),
            JobShape::Malleable { work, .. } => work * MALLEABLE_STATE_BYTES_PER_WORK,
        }
    }

    /// The size class, for class-shaped jobs.
    pub fn class(&self) -> Option<SizeClass> {
        match self {
            JobShape::Class(c) => Some(*c),
            JobShape::Malleable { .. } => None,
        }
    }
}

/// One job of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job name. Producers pad numeric suffixes so that
    /// lexicographic order equals submission order (the engines use
    /// names as the final deterministic tie-breaker at the report edge).
    pub name: String,
    /// Arrival (submission) time relative to the workload epoch.
    pub arrival: Duration,
    /// Priority, larger = more important (the paper uses 1–5).
    pub priority: u32,
    /// Replica bounds + work model.
    pub shape: JobShape,
    /// If set, a client cancellation is injected at this time (relative
    /// to the epoch, like `arrival`). A time before `arrival` is a
    /// no-op in both engines — exactly like a real client cancelling a
    /// job name that has not been submitted yet.
    pub cancel_at: Option<Duration>,
    /// User walltime estimate: how long the job is expected to run at
    /// its requested size (SWF field 9, falling back to the actual run
    /// time). Reservation-based backfilling (`EasyBackfill`) plans the
    /// queue-head shadow start from these; `None` means "no estimate" —
    /// such a job is treated as unbounded by reservation arithmetic and
    /// can only backfill into slots no reservation will ever need.
    pub walltime_estimate: Option<Duration>,
}

impl JobSpec {
    /// A job of `class` with the class's replica bounds, arriving at
    /// the epoch.
    pub fn of_class(name: impl Into<String>, class: SizeClass, priority: u32) -> Self {
        JobSpec {
            name: name.into(),
            arrival: Duration::ZERO,
            priority,
            shape: JobShape::Class(class),
            cancel_at: None,
            walltime_estimate: None,
        }
    }

    /// A malleable job with explicit bounds and `work` core-seconds,
    /// arriving at the epoch.
    pub fn malleable(
        name: impl Into<String>,
        min_replicas: u32,
        max_replicas: u32,
        work: f64,
        priority: u32,
    ) -> Self {
        JobSpec {
            name: name.into(),
            arrival: Duration::ZERO,
            priority,
            shape: JobShape::Malleable {
                min_replicas,
                max_replicas,
                work,
            },
            cancel_at: None,
            walltime_estimate: None,
        }
    }

    /// Builder: sets the arrival time.
    pub fn at(mut self, arrival: Duration) -> Self {
        self.arrival = arrival;
        self
    }

    /// Builder: injects a cancellation at `t`.
    pub fn cancelled_at(mut self, t: Duration) -> Self {
        self.cancel_at = Some(t);
        self
    }

    /// Builder: sets the user walltime estimate.
    pub fn with_walltime_estimate(mut self, estimate: Duration) -> Self {
        self.walltime_estimate = Some(estimate);
        self
    }

    /// Minimum replicas.
    pub fn min_replicas(&self) -> u32 {
        self.shape.min_replicas()
    }

    /// Maximum replicas.
    pub fn max_replicas(&self) -> u32 {
        self.shape.max_replicas()
    }

    /// Total work (see [`JobShape::work`]).
    pub fn work(&self) -> f64 {
        self.shape.work()
    }

    /// The size class, for class-shaped jobs.
    pub fn class(&self) -> Option<SizeClass> {
        self.shape.class()
    }
}

/// Why a [`WorkloadSpec`] is not replayable.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// No jobs at all.
    Empty,
    /// Two jobs share a name.
    DuplicateName(String),
    /// A job violates `1 <= min <= max`.
    BadBounds {
        /// Offending job.
        name: String,
        /// Its minimum replicas.
        min: u32,
        /// Its maximum replicas.
        max: u32,
    },
    /// A job's work is zero, negative or non-finite.
    BadWork {
        /// Offending job.
        name: String,
        /// Its work value.
        work: f64,
    },
    /// A job's walltime estimate is zero, negative or non-finite.
    BadWalltime {
        /// Offending job.
        name: String,
        /// Its estimate in seconds.
        estimate_s: f64,
    },
    /// Arrivals are not nondecreasing in job order.
    UnsortedArrivals {
        /// First job observed out of order.
        name: String,
    },
    /// The fault layer violates its contract (see [`FaultError`]).
    BadFaults(FaultError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Empty => write!(f, "workload has no jobs"),
            WorkloadError::DuplicateName(n) => write!(f, "duplicate job name {n}"),
            WorkloadError::BadBounds { name, min, max } => {
                write!(f, "{name}: bad replica bounds [{min}, {max}]")
            }
            WorkloadError::BadWork { name, work } => {
                write!(f, "{name}: bad work {work}")
            }
            WorkloadError::BadWalltime { name, estimate_s } => {
                write!(f, "{name}: bad walltime estimate {estimate_s}s")
            }
            WorkloadError::UnsortedArrivals { name } => {
                write!(f, "{name}: arrival earlier than its predecessor")
            }
            WorkloadError::BadFaults(e) => write!(f, "fault layer: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A replayable workload: jobs in submission order with their own
/// arrival times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// Jobs in submission (arrival) order.
    pub jobs: Vec<JobSpec>,
    /// The fault layer: capacity-change events and recovery parameters
    /// (empty by default — fault-free replay pays nothing for it).
    pub faults: FaultSpec,
}

impl WorkloadSpec {
    /// A workload over `jobs` (assumed already in arrival order; call
    /// [`WorkloadSpec::validate`] to check) with an empty fault layer.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        WorkloadSpec {
            jobs,
            faults: FaultSpec::default(),
        }
    }

    /// Builder: attaches a fault layer (capacity events + recovery
    /// parameters) to the workload.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Builder: job `i` arrives at `i × gap` (the classic fixed
    /// submission-gap schedule), overwriting any prior arrivals.
    pub fn spaced_every(mut self, gap: Duration) -> Self {
        let gap_s = gap.as_secs();
        for (i, job) in self.jobs.iter_mut().enumerate() {
            job.arrival = Duration::from_secs(gap_s * i as f64);
        }
        self
    }

    /// Builder: compresses the arrival timeline by `factor` — every
    /// arrival, cancellation *and* fault-event instant is divided by
    /// it, so a
    /// multi-week archive trace replays in bounded simulation time
    /// while the relative order of all timeline events (and each job's
    /// cancellation offset, proportionally) is preserved. A factor
    /// below 1 dilates instead. Work and walltime estimates are left
    /// untouched — compressing only arrivals *raises* the offered load;
    /// pair with [`WorkloadSpec::scale_work`] to keep the load factor
    /// constant.
    ///
    /// # Panics
    /// If `factor` is not finite and positive.
    pub fn compress_arrivals(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression factor must be finite and > 0, got {factor}"
        );
        for job in &mut self.jobs {
            job.arrival = Duration::from_secs(job.arrival.as_secs() / factor);
            if let Some(c) = job.cancel_at {
                job.cancel_at = Some(Duration::from_secs(c.as_secs() / factor));
            }
        }
        for e in &mut self.faults.events {
            e.at = Duration::from_secs((e.at.as_secs() / factor).round());
        }
        self
    }

    /// Builder: scales every malleable job's work — and its walltime
    /// estimate, which tracks runtime — by `factor` (class-shaped jobs
    /// keep their class-defined step count; only their estimate
    /// scales). Combined with
    /// [`WorkloadSpec::compress_arrivals`] at the same factor this
    /// replays a long trace faster at an unchanged load factor
    /// (runtime/interarrival ratio).
    ///
    /// # Panics
    /// If `factor` is not finite and positive.
    pub fn scale_work(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "work scale factor must be finite and > 0, got {factor}"
        );
        for job in &mut self.jobs {
            if let JobShape::Malleable { work, .. } = &mut job.shape {
                *work *= factor;
            }
            if let Some(est) = job.walltime_estimate {
                job.walltime_estimate = Some(Duration::from_secs(est.as_secs() * factor));
            }
        }
        self
    }

    /// Splits the workload into `n` per-shard workloads according to
    /// `assignment` (one shard index per job, in job order) — the
    /// replay-side half of cross-cluster placement: a federation's
    /// `PlacementPolicy` produces the assignment, this builds the
    /// per-shard replay inputs.
    ///
    /// Jobs keep their arrival times, cancellation instants and
    /// relative order, so each part is itself a valid arrival-sorted
    /// workload. The fault layer is **replicated** into every
    /// non-empty part: each shard models an independent cluster
    /// experiencing the same capacity timeline (a reclamation hits
    /// every cluster of the fleet, as with a zone-wide spot event).
    /// Parts may come back empty when no job routed to that shard.
    ///
    /// # Panics
    /// If `assignment.len() != self.jobs.len()` or any index is `>= n`.
    pub fn partition(&self, assignment: &[usize], n: usize) -> Vec<WorkloadSpec> {
        assert_eq!(
            assignment.len(),
            self.jobs.len(),
            "one shard index per job required"
        );
        let mut parts: Vec<WorkloadSpec> = (0..n).map(|_| WorkloadSpec::default()).collect();
        for (job, &shard) in self.jobs.iter().zip(assignment) {
            assert!(shard < n, "job {} routed to shard {shard} of {n}", job.name);
            parts[shard].jobs.push(job.clone());
        }
        for part in &mut parts {
            if !part.jobs.is_empty() {
                part.faults = self.faults.clone();
            }
        }
        parts
    }

    /// Checks the engine contract: at least one job, unique names, sane
    /// bounds, work and walltime estimates, nondecreasing arrivals.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.jobs.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let mut names: Vec<&str> = self.jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(WorkloadError::DuplicateName(w[0].to_string()));
        }
        let mut prev = Duration::ZERO;
        for job in &self.jobs {
            let (min, max) = (job.min_replicas(), job.max_replicas());
            if min == 0 || min > max {
                return Err(WorkloadError::BadBounds {
                    name: job.name.clone(),
                    min,
                    max,
                });
            }
            let work = job.work();
            if !(work.is_finite() && work > 0.0) {
                return Err(WorkloadError::BadWork {
                    name: job.name.clone(),
                    work,
                });
            }
            if let Some(est) = job.walltime_estimate {
                let estimate_s = est.as_secs();
                if !(estimate_s.is_finite() && estimate_s > 0.0) {
                    return Err(WorkloadError::BadWalltime {
                        name: job.name.clone(),
                        estimate_s,
                    });
                }
            }
            if job.arrival < prev {
                return Err(WorkloadError::UnsortedArrivals {
                    name: job.name.clone(),
                });
            }
            prev = job.arrival;
        }
        self.faults.validate().map_err(WorkloadError::BadFaults)?;
        Ok(())
    }
}

/// Deterministic per-shard seed: mixes a base workload seed with a
/// shard index (SplitMix64 finalizer) so a federation generates
/// statistically independent per-shard workloads that are reproducible
/// regardless of worker-thread count or interleaving — the seed depends
/// only on `(base, shard)`, never on wall-clock or scheduling order.
pub fn shard_seed(base: u64, shard: usize) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parameters_match_paper() {
        assert_eq!(SizeClass::Small.replica_bounds(), (2, 8));
        assert_eq!(SizeClass::Medium.replica_bounds(), (4, 16));
        assert_eq!(SizeClass::Large.replica_bounds(), (8, 32));
        assert_eq!(SizeClass::XLarge.replica_bounds(), (16, 64));
        assert_eq!(SizeClass::Small.steps(), 40_000);
        assert_eq!(SizeClass::XLarge.steps(), 10_000);
        assert_eq!(SizeClass::XLarge.grid(), 16_384);
    }

    #[test]
    fn shapes_expose_bounds_and_work() {
        let c = JobSpec::of_class("a", SizeClass::Medium, 3);
        assert_eq!((c.min_replicas(), c.max_replicas()), (4, 16));
        assert_eq!(c.work(), 40_000.0);
        assert_eq!(c.class(), Some(SizeClass::Medium));

        let m = JobSpec::malleable("b", 2, 8, 1600.0, 1);
        assert_eq!((m.min_replicas(), m.max_replicas()), (2, 8));
        assert_eq!(m.work(), 1600.0);
        assert_eq!(m.class(), None);
        assert!(m.shape.state_bytes() > 0.0);
    }

    #[test]
    fn spaced_every_sets_linear_arrivals() {
        let wl = WorkloadSpec::new(vec![
            JobSpec::of_class("a", SizeClass::Small, 1),
            JobSpec::of_class("b", SizeClass::Small, 1),
            JobSpec::of_class("c", SizeClass::Small, 1),
        ])
        .spaced_every(Duration::from_secs(90.0));
        let arrivals: Vec<f64> = wl.jobs.iter().map(|j| j.arrival.as_secs()).collect();
        assert_eq!(arrivals, vec![0.0, 90.0, 180.0]);
        assert!(wl.validate().is_ok());
    }

    #[test]
    fn validate_catches_each_contract_violation() {
        assert_eq!(
            WorkloadSpec::new(vec![]).validate(),
            Err(WorkloadError::Empty)
        );

        let dup = WorkloadSpec::new(vec![
            JobSpec::of_class("a", SizeClass::Small, 1),
            JobSpec::of_class("a", SizeClass::Large, 1),
        ]);
        assert!(matches!(
            dup.validate(),
            Err(WorkloadError::DuplicateName(_))
        ));

        let bounds = WorkloadSpec::new(vec![JobSpec::malleable("z", 8, 4, 100.0, 1)]);
        assert!(matches!(
            bounds.validate(),
            Err(WorkloadError::BadBounds { .. })
        ));
        let zero_min = WorkloadSpec::new(vec![JobSpec::malleable("z", 0, 4, 100.0, 1)]);
        assert!(matches!(
            zero_min.validate(),
            Err(WorkloadError::BadBounds { .. })
        ));

        let work = WorkloadSpec::new(vec![JobSpec::malleable("w", 1, 4, 0.0, 1)]);
        assert!(matches!(
            work.validate(),
            Err(WorkloadError::BadWork { .. })
        ));

        let unsorted = WorkloadSpec::new(vec![
            JobSpec::of_class("a", SizeClass::Small, 1).at(Duration::from_secs(10.0)),
            JobSpec::of_class("b", SizeClass::Small, 1).at(Duration::from_secs(5.0)),
        ]);
        assert!(matches!(
            unsorted.validate(),
            Err(WorkloadError::UnsortedArrivals { .. })
        ));
    }

    #[test]
    fn builders_compose() {
        let j = JobSpec::malleable("j", 2, 4, 50.0, 3)
            .at(Duration::from_secs(7.0))
            .cancelled_at(Duration::from_secs(30.0))
            .with_walltime_estimate(Duration::from_secs(25.0));
        assert_eq!(j.arrival.as_secs(), 7.0);
        assert_eq!(j.cancel_at.unwrap().as_secs(), 30.0);
        assert_eq!(j.walltime_estimate.unwrap().as_secs(), 25.0);
        assert_eq!(j.priority, 3);
    }

    #[test]
    fn validate_rejects_bad_walltime_estimates() {
        for bad in [0.0, -5.0, f64::INFINITY] {
            let wl = WorkloadSpec::new(vec![JobSpec::malleable("w", 1, 4, 100.0, 1)
                .with_walltime_estimate(Duration::from_secs(bad))]);
            assert!(
                matches!(wl.validate(), Err(WorkloadError::BadWalltime { .. })),
                "estimate {bad} accepted"
            );
        }
        let ok = WorkloadSpec::new(vec![JobSpec::malleable("w", 1, 4, 100.0, 1)
            .with_walltime_estimate(Duration::from_secs(1.0))]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn compress_arrivals_preserves_order_and_cancellation_offsets() {
        let wl = WorkloadSpec::new(vec![
            JobSpec::malleable("a", 1, 4, 100.0, 1).at(Duration::from_secs(0.0)),
            JobSpec::malleable("b", 1, 4, 100.0, 1)
                .at(Duration::from_secs(600.0))
                .cancelled_at(Duration::from_secs(900.0)),
            JobSpec::malleable("c", 1, 4, 100.0, 1).at(Duration::from_secs(1200.0)),
        ])
        .compress_arrivals(10.0);
        let arrivals: Vec<f64> = wl.jobs.iter().map(|j| j.arrival.as_secs()).collect();
        assert_eq!(arrivals, vec![0.0, 60.0, 120.0]);
        // The cancellation instant compresses with the timeline, so its
        // offset past the arrival scales by the same factor.
        let b = &wl.jobs[1];
        assert_eq!(b.cancel_at.unwrap().as_secs(), 90.0);
        assert_eq!((b.cancel_at.unwrap() - b.arrival).as_secs(), 30.0);
        assert!(wl.validate().is_ok());
    }

    #[test]
    fn scale_work_scales_malleable_work_and_estimates() {
        let wl = WorkloadSpec::new(vec![
            JobSpec::malleable("m", 2, 4, 400.0, 1)
                .with_walltime_estimate(Duration::from_secs(100.0)),
            JobSpec::of_class("c", SizeClass::Small, 1)
                .with_walltime_estimate(Duration::from_secs(50.0)),
        ])
        .scale_work(0.5);
        assert_eq!(wl.jobs[0].work(), 200.0);
        assert_eq!(wl.jobs[0].walltime_estimate.unwrap().as_secs(), 50.0);
        // Class jobs keep their class-defined steps; only the estimate
        // scales.
        assert_eq!(wl.jobs[1].work(), 40_000.0);
        assert_eq!(wl.jobs[1].walltime_estimate.unwrap().as_secs(), 25.0);
    }

    #[test]
    fn fault_layer_rides_the_workload() {
        use crate::fault::{FaultEvent, FaultKind, FaultSpec};
        let faults = FaultSpec {
            events: vec![
                FaultEvent {
                    at: Duration::from_secs(600.0),
                    slots: 8,
                    kind: FaultKind::Reclaim,
                },
                FaultEvent {
                    at: Duration::from_secs(1200.0),
                    slots: 8,
                    kind: FaultKind::Return,
                },
            ],
            ..FaultSpec::default()
        };
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("a", 1, 4, 100.0, 1)])
            .with_faults(faults)
            .compress_arrivals(10.0);
        assert_eq!(wl.faults.events[0].at.as_secs(), 60.0);
        assert_eq!(wl.faults.events[1].at.as_secs(), 120.0);
        assert!(wl.validate().is_ok());

        // An invalid fault layer fails workload validation.
        let bad = WorkloadSpec::new(vec![JobSpec::malleable("a", 1, 4, 100.0, 1)]).with_faults(
            FaultSpec {
                events: vec![FaultEvent {
                    at: Duration::from_secs(10.0),
                    slots: 8,
                    kind: FaultKind::Return,
                }],
                ..FaultSpec::default()
            },
        );
        assert!(matches!(bad.validate(), Err(WorkloadError::BadFaults(_))));
    }

    #[test]
    fn partition_splits_by_assignment_and_replicates_faults() {
        use crate::fault::{FaultEvent, FaultKind, FaultSpec};
        let wl = WorkloadSpec::new(vec![
            JobSpec::malleable("a", 1, 4, 100.0, 1).at(Duration::from_secs(0.0)),
            JobSpec::malleable("b", 1, 4, 100.0, 1).at(Duration::from_secs(10.0)),
            JobSpec::malleable("c", 1, 4, 100.0, 1).at(Duration::from_secs(20.0)),
            JobSpec::malleable("d", 1, 4, 100.0, 1).at(Duration::from_secs(30.0)),
        ])
        .with_faults(FaultSpec::new(vec![
            FaultEvent {
                at: Duration::from_secs(5.0),
                slots: 2,
                kind: FaultKind::Reclaim,
            },
            FaultEvent {
                at: Duration::from_secs(50.0),
                slots: 2,
                kind: FaultKind::Return,
            },
        ]));
        let parts = wl.partition(&[0, 1, 0, 1], 3);
        assert_eq!(parts.len(), 3);
        let names = |p: &WorkloadSpec| p.jobs.iter().map(|j| j.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&parts[0]), vec!["a", "c"]);
        assert_eq!(names(&parts[1]), vec!["b", "d"]);
        assert!(parts[2].is_empty());
        // Arrival order survives per part, so each part validates.
        assert!(parts[0].validate().is_ok());
        assert!(parts[1].validate().is_ok());
        // The fault timeline replicates into non-empty parts only.
        assert_eq!(parts[0].faults.events.len(), 2);
        assert_eq!(parts[1].faults.events.len(), 2);
        assert!(parts[2].faults.events.is_empty());
        // Job counts conserve across the partition.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, wl.len());
    }

    #[test]
    #[should_panic(expected = "routed to shard")]
    fn partition_rejects_out_of_range_assignment() {
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("a", 1, 2, 10.0, 1)]);
        let _ = wl.partition(&[2], 2);
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..64).map(|s| shard_seed(42, s)).collect();
        let again: Vec<u64> = (0..64).map(|s| shard_seed(42, s)).collect();
        assert_eq!(seeds, again, "pure function of (base, shard)");
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "no shard seed collisions");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0), "base matters");
    }

    #[test]
    #[should_panic(expected = "compression factor")]
    fn compress_rejects_nonpositive_factor() {
        let _ =
            WorkloadSpec::new(vec![JobSpec::malleable("a", 1, 2, 10.0, 1)]).compress_arrivals(0.0);
    }
}
