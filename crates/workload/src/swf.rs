//! Streaming parser (and serializer) for the Standard Workload Format.
//!
//! SWF (Feitelson's archive format) is line-based: `;`-prefixed
//! header/comment lines, then one record per line of 18
//! whitespace-separated fields; `-1` marks a missing value. The parser
//! here streams records off any [`BufRead`] — it never buffers the
//! trace — handles CRLF endings, tolerates truncated trailing fields,
//! and surfaces structural problems as typed [`SwfError`]s.
//!
//! [`load_workload`] turns the record stream into a [`WorkloadSpec`]:
//! processors fall back `requested → allocated`, runtimes fall back
//! `actual → requested`, arrivals must be nondecreasing (the SWF
//! contract), and a [`MalleabilityModel`] maps each job's processor
//! count to replica bounds with `work = runtime × processors`
//! core-seconds (linear speedup — see the crate docs).

use std::io::BufRead;

use hpc_metrics::Duration;

use crate::malleability::MalleabilityModel;
use crate::spec::{JobSpec, WorkloadSpec};

/// One SWF record — the 18 standard fields, in file order. Missing
/// values are `-1` exactly as on disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfRecord {
    /// 1: job number.
    pub job_id: u64,
    /// 2: submit time, seconds since the trace epoch.
    pub submit_s: f64,
    /// 3: wait time (s).
    pub wait_s: f64,
    /// 4: run time (s).
    pub run_s: f64,
    /// 5: number of allocated processors.
    pub allocated_procs: i64,
    /// 6: average CPU time used (s).
    pub avg_cpu_s: f64,
    /// 7: used memory (KB).
    pub used_memory_kb: f64,
    /// 8: requested number of processors.
    pub requested_procs: i64,
    /// 9: requested time (s).
    pub requested_s: f64,
    /// 10: requested memory (KB).
    pub requested_memory_kb: f64,
    /// 11: status (1 = completed).
    pub status: i64,
    /// 12: user id.
    pub user: i64,
    /// 13: group id.
    pub group: i64,
    /// 14: executable (application) number.
    pub executable: i64,
    /// 15: queue number.
    pub queue: i64,
    /// 16: partition number.
    pub partition: i64,
    /// 17: preceding job number.
    pub preceding_job: i64,
    /// 18: think time from preceding job (s).
    pub think_s: f64,
}

impl SwfRecord {
    /// The record as one SWF data line (18 space-separated fields, no
    /// newline). Integral floats print without a decimal point, so a
    /// parse → serialize → parse round trip is exact.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.job_id,
            self.submit_s,
            self.wait_s,
            self.run_s,
            self.allocated_procs,
            self.avg_cpu_s,
            self.used_memory_kb,
            self.requested_procs,
            self.requested_s,
            self.requested_memory_kb,
            self.status,
            self.user,
            self.group,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            self.think_s,
        )
    }
}

/// Why an SWF stream could not be parsed (or annotated into a
/// workload).
#[derive(Debug)]
pub enum SwfError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A data line is structurally broken (too few fields, an
    /// unparsable number, a duplicate job id, …).
    Malformed {
        /// 1-based line number in the stream.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A record requests (and allocated) no processors — it cannot be
    /// scheduled.
    ZeroProcessors {
        /// 1-based line number.
        line: usize,
        /// The record's job id.
        job_id: u64,
    },
    /// A record neither ran nor carries a requested time — there is no
    /// runtime to replay.
    MissingRuntime {
        /// 1-based line number.
        line: usize,
        /// The record's job id.
        job_id: u64,
    },
    /// A record's submit time precedes its predecessor's (SWF requires
    /// nondecreasing submit order).
    OutOfOrderArrival {
        /// 1-based line number.
        line: usize,
        /// The previous record's submit time (s).
        prev_s: f64,
        /// This record's submit time (s).
        got_s: f64,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "swf: io error: {e}"),
            SwfError::Malformed { line, reason } => {
                write!(f, "swf line {line}: {reason}")
            }
            SwfError::ZeroProcessors { line, job_id } => {
                write!(f, "swf line {line}: job {job_id} requests no processors")
            }
            SwfError::MissingRuntime { line, job_id } => {
                write!(
                    f,
                    "swf line {line}: job {job_id} has neither a run time nor a requested time"
                )
            }
            SwfError::OutOfOrderArrival {
                line,
                prev_s,
                got_s,
            } => {
                write!(
                    f,
                    "swf line {line}: submit time {got_s}s precedes predecessor at {prev_s}s"
                )
            }
        }
    }
}

impl std::error::Error for SwfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SwfError {
    fn from(e: std::io::Error) -> Self {
        SwfError::Io(e)
    }
}

/// Streaming iterator over the data records of an SWF stream. Header
/// and comment lines (leading `;`) and blank lines are skipped; each
/// data line yields one [`SwfRecord`] (or the first error).
pub struct SwfRecords<R: BufRead> {
    reader: R,
    line: usize,
    buf: String,
}

/// Streams the records of `reader`.
pub fn records<R: BufRead>(reader: R) -> SwfRecords<R> {
    SwfRecords {
        reader,
        line: 0,
        buf: String::new(),
    }
}

impl<R: BufRead> SwfRecords<R> {
    fn parse_line(line_no: usize, line: &str) -> Result<SwfRecord, SwfError> {
        let mut fields = line.split_whitespace();
        let mut idx = 0usize;
        let mut next = |name: &str| -> Result<f64, SwfError> {
            idx += 1;
            match fields.next() {
                // Fields beyond the leading eight are optional: some
                // archived traces truncate the tail, which reads as
                // "missing" (-1) rather than malformed.
                None if idx > 8 => Ok(-1.0),
                None => Err(SwfError::Malformed {
                    line: line_no,
                    reason: format!("missing field {idx} ({name})"),
                }),
                Some(tok) => tok.parse::<f64>().map_err(|_| SwfError::Malformed {
                    line: line_no,
                    reason: format!("field {idx} ({name}): unparsable number {tok:?}"),
                }),
            }
        };
        let job_id_f = next("job id")?;
        let submit_s = next("submit time")?;
        let wait_s = next("wait time")?;
        let run_s = next("run time")?;
        let allocated = next("allocated processors")?;
        let avg_cpu_s = next("average cpu time")?;
        let used_memory_kb = next("used memory")?;
        let requested = next("requested processors")?;
        let requested_s = next("requested time")?;
        let requested_memory_kb = next("requested memory")?;
        let status = next("status")?;
        let user = next("user id")?;
        let group = next("group id")?;
        let executable = next("executable")?;
        let queue = next("queue")?;
        let partition = next("partition")?;
        let preceding_job = next("preceding job")?;
        let think_s = next("think time")?;
        if job_id_f < 0.0 || job_id_f.fract() != 0.0 {
            return Err(SwfError::Malformed {
                line: line_no,
                reason: format!("job id must be a nonnegative integer, got {job_id_f}"),
            });
        }
        Ok(SwfRecord {
            job_id: job_id_f as u64,
            submit_s,
            wait_s,
            run_s,
            allocated_procs: allocated as i64,
            avg_cpu_s,
            used_memory_kb,
            requested_procs: requested as i64,
            requested_s,
            requested_memory_kb,
            status: status as i64,
            user: user as i64,
            group: group as i64,
            executable: executable as i64,
            queue: queue as i64,
            partition: partition as i64,
            preceding_job: preceding_job as i64,
            think_s,
        })
    }
}

impl<R: BufRead> Iterator for SwfRecords<R> {
    type Item = Result<(usize, SwfRecord), SwfError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(SwfError::Io(e))),
            }
            self.line += 1;
            // Tolerate CRLF (and stray trailing whitespace) endings.
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            return Some(Self::parse_line(self.line, line).map(|r| (self.line, r)));
        }
    }
}

/// How [`load_workload`] annotates a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfLoadConfig {
    /// Requested-processors → replica-bounds transform. Its `cap` is
    /// the replay cluster's total slot count.
    pub malleability: MalleabilityModel,
    /// Slots per job the scheduling policies reserve on top of the
    /// workers (the launcher pod; every built-in policy reserves 1).
    /// Processor counts — and the annotated `min_replicas` — clamp to
    /// `cap - reserved_slots`, because a job whose *minimum* footprint
    /// plus launcher exceeds the cluster can never be scheduled:
    /// Feitelson-archive traces routinely contain machine-wide jobs,
    /// and replaying one unclamped would starve forever.
    pub reserved_slots: u32,
    /// Keep only the first `max_jobs` records (`None` = whole trace).
    pub max_jobs: Option<usize>,
}

impl SwfLoadConfig {
    /// Rigid replay onto a `cap`-slot cluster (the unannotated
    /// baseline).
    pub fn rigid(cap: u32) -> Self {
        SwfLoadConfig {
            malleability: MalleabilityModel::rigid(cap),
            reserved_slots: 1,
            max_jobs: None,
        }
    }

    /// Elastic (half-to-double) annotation onto a `cap`-slot cluster.
    pub fn elastic(cap: u32) -> Self {
        SwfLoadConfig {
            malleability: MalleabilityModel::elastic(cap),
            reserved_slots: 1,
            max_jobs: None,
        }
    }

    /// Builder: cap the number of jobs loaded.
    pub fn take(mut self, max_jobs: usize) -> Self {
        self.max_jobs = Some(max_jobs);
        self
    }

    /// The largest worker footprint a job can actually be scheduled
    /// with on the replay cluster.
    pub fn schedulable_slots(&self) -> u32 {
        self.malleability
            .cap
            .saturating_sub(self.reserved_slots)
            .max(1)
    }
}

/// Priority for an SWF record: queue numbers map cyclically onto the
/// paper's 1–5 scale; records without a queue get priority 1.
fn priority_of(record: &SwfRecord) -> u32 {
    if record.queue >= 1 {
        ((record.queue - 1) % 5 + 1) as u32
    } else {
        1
    }
}

/// Parses an SWF stream into a [`WorkloadSpec`] under `cfg`.
///
/// Field fallbacks: processors use `requested_procs`, falling back to
/// `allocated_procs` when missing (`-1`); runtimes use `run_s`, falling
/// back to `requested_s`. A record missing both sides of either pair is
/// a typed error ([`SwfError::ZeroProcessors`] /
/// [`SwfError::MissingRuntime`]), as is a decreasing submit time
/// ([`SwfError::OutOfOrderArrival`]). Job names are `swf{job_id:07}` —
/// zero-padded so lexicographic order equals numeric (= submission)
/// order.
pub fn load_workload<R: BufRead>(reader: R, cfg: &SwfLoadConfig) -> Result<WorkloadSpec, SwfError> {
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut seen_ids: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut prev_submit = f64::NEG_INFINITY;
    for item in records(reader) {
        if cfg.max_jobs.is_some_and(|cap| jobs.len() >= cap) {
            break;
        }
        let (line, r) = item?;
        if !seen_ids.insert(r.job_id) {
            return Err(SwfError::Malformed {
                line,
                reason: format!("duplicate job id {}", r.job_id),
            });
        }
        if r.submit_s < 0.0 || !r.submit_s.is_finite() {
            return Err(SwfError::Malformed {
                line,
                reason: format!("bad submit time {}", r.submit_s),
            });
        }
        if r.submit_s < prev_submit {
            return Err(SwfError::OutOfOrderArrival {
                line,
                prev_s: prev_submit,
                got_s: r.submit_s,
            });
        }
        prev_submit = r.submit_s;
        let procs = if r.requested_procs > 0 {
            r.requested_procs
        } else {
            r.allocated_procs
        };
        if procs <= 0 {
            return Err(SwfError::ZeroProcessors {
                line,
                job_id: r.job_id,
            });
        }
        let runtime_s = if r.run_s > 0.0 {
            r.run_s
        } else {
            r.requested_s
        };
        if !(runtime_s.is_finite() && runtime_s > 0.0) {
            return Err(SwfError::MissingRuntime {
                line,
                job_id: r.job_id,
            });
        }
        // Walltime estimate: the user's requested time (field 9), with
        // the opposite fallback to the runtime pair — an archived record
        // missing its estimate borrows the actual run time, so every
        // loadable record carries an estimate for reservation-based
        // backfilling (EASY).
        let walltime_s = if r.requested_s > 0.0 && r.requested_s.is_finite() {
            r.requested_s
        } else {
            runtime_s
        };
        // Clamp to the *schedulable* worker capacity (cluster minus the
        // per-job reserved launcher slots) before computing work, so
        // the rigid annotation reproduces the (clamped) runtime exactly
        // and no job's minimum footprint exceeds what a policy can ever
        // grant. The min bound gets the same clamp for custom
        // malleability factors > 1.
        let schedulable = cfg.schedulable_slots();
        let procs = (procs as u32).min(schedulable);
        let (min_replicas, max_replicas) = cfg.malleability.bounds(procs);
        let min_replicas = min_replicas.min(schedulable);
        let max_replicas = max_replicas.max(min_replicas);
        let mut job = JobSpec::malleable(
            format!("swf{:07}", r.job_id),
            min_replicas,
            max_replicas,
            runtime_s * f64::from(procs),
            priority_of(&r),
        )
        .at(Duration::from_secs(r.submit_s))
        .with_walltime_estimate(Duration::from_secs(walltime_s));
        // Status 5 is SWF's cancellation code: the record stopped at
        // submit + wait + run (queue time plus whatever it ran — either
        // may be missing, reading as zero), which becomes the job's
        // `cancel_at` instant on the replay timeline.
        if r.status == 5 {
            let offset = r.wait_s.max(0.0) + r.run_s.max(0.0);
            job = job.cancelled_at(Duration::from_secs(r.submit_s + offset));
        }
        jobs.push(job);
    }
    Ok(WorkloadSpec::new(jobs))
}

/// Writes `records` as an SWF stream (a minimal header plus one line
/// per record).
pub fn write_swf<W: std::io::Write>(
    w: &mut W,
    records: impl IntoIterator<Item = SwfRecord>,
) -> std::io::Result<()> {
    writeln!(w, "; SWF written by hpc-workload")?;
    writeln!(w, "; Version: 2.2")?;
    for r in records {
        writeln!(w, "{}", r.to_line())?;
    }
    Ok(())
}

/// Renders a [`WorkloadSpec`] as SWF records — the export side of the
/// trace pipeline, so generated or annotated scenarios can be archived
/// and replayed by any SWF consumer.
///
/// The mapping inverts [`load_workload`]'s rigid annotation: each job's
/// processor count is its `max_replicas`, its run time is
/// `work / processors` (exact for the linear-speedup annotation), and
/// its walltime estimate becomes the requested time (field 9, `-1` when
/// the job has none). When *every* job name parses as `swf{N}` with
/// distinct `N`s (the loader's own naming), those ids are written back
/// so a load → write → load round trip preserves names; any other
/// naming uses 1-based positions throughout — mixing the two schemes
/// could collide ids and produce a stream the loader rejects.
/// Priorities 1–5 round-trip through the queue field.
///
/// Cancellations round-trip through SWF's status-5 code: a cancelled
/// job writes `status = 5` with `wait + run` encoding the cancellation
/// offset (`cancel_at - arrival`), exactly what the loader reads back.
/// A job cancelled before its full runtime writes the *partial* run
/// time — what a real archive would have recorded — so its `cancel_at`
/// is preserved exactly while the full intended work is unknowable from
/// the record (work reloads as `partial_run × procs`). A cancellation
/// before arrival is a no-op in every engine and is dropped.
pub fn workload_records(workload: &WorkloadSpec) -> Vec<SwfRecord> {
    let parsed_ids: Option<Vec<u64>> = workload
        .jobs
        .iter()
        .map(|job| {
            job.name
                .strip_prefix("swf")
                .and_then(|digits| digits.parse::<u64>().ok())
        })
        .collect();
    let parsed_ids = parsed_ids.filter(|ids| {
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    });
    workload
        .jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let job_id = parsed_ids.as_ref().map_or(i as u64 + 1, |ids| ids[i]);
            let procs = i64::from(job.max_replicas());
            let full_run = job.work() / procs as f64;
            // Cancelled jobs encode their cancellation offset as
            // wait + run (see the function docs); everyone else writes
            // the full runtime with no wait.
            let (status, wait_s, run_s) = match job.cancel_at {
                Some(c) if c >= job.arrival => {
                    let offset = (c - job.arrival).as_secs();
                    if offset >= full_run {
                        (5, offset - full_run, full_run)
                    } else {
                        (5, 0.0, offset)
                    }
                }
                _ => (1, -1.0, full_run),
            };
            // A record whose run time came out zero (cancelled at
            // arrival) still needs a loadable runtime: fall back to the
            // requested-time field, exactly the pair the loader reads.
            let requested_s = match job.walltime_estimate {
                Some(d) => d.as_secs(),
                None if run_s <= 0.0 => full_run,
                None => -1.0,
            };
            SwfRecord {
                job_id,
                submit_s: job.arrival.as_secs(),
                wait_s,
                run_s,
                allocated_procs: procs,
                avg_cpu_s: -1.0,
                used_memory_kb: -1.0,
                requested_procs: procs,
                requested_s,
                requested_memory_kb: -1.0,
                status,
                user: -1,
                group: -1,
                executable: -1,
                queue: i64::from(job.priority),
                partition: -1,
                preceding_job: -1,
                think_s: -1.0,
            }
        })
        .collect()
}

/// Writes a [`WorkloadSpec`] as an SWF stream (see [`workload_records`]
/// for the field mapping). The inverse of [`load_workload`] for
/// rigid-annotated workloads: loading the written stream with
/// [`SwfLoadConfig::rigid`] at a sufficient cap reproduces the workload
/// (modulo the walltime fallback for jobs that carried no estimate).
pub fn write_workload<W: std::io::Write>(
    w: &mut W,
    workload: &WorkloadSpec,
) -> std::io::Result<()> {
    write_swf(w, workload_records(workload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(job_id: u64, submit: f64, run: f64, procs: i64) -> SwfRecord {
        SwfRecord {
            job_id,
            submit_s: submit,
            wait_s: -1.0,
            run_s: run,
            allocated_procs: procs,
            avg_cpu_s: -1.0,
            used_memory_kb: -1.0,
            requested_procs: procs,
            requested_s: -1.0,
            requested_memory_kb: -1.0,
            status: 1,
            user: -1,
            group: -1,
            executable: -1,
            queue: 1,
            partition: -1,
            preceding_job: -1,
            think_s: -1.0,
        }
    }

    #[test]
    fn parses_a_minimal_trace_with_headers_and_comments() {
        let text = "\
; Version: 2.2
; Computer: test cluster
; note: records follow

1 0 -1 100 4 -1 -1 4 120 -1 1 7 1 -1 1 -1 -1 -1
2 30 -1 200 8 -1 -1 8 240 -1 1 8 1 -1 2 -1 -1 -1
";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl.jobs[0].name, "swf0000001");
        assert_eq!(wl.jobs[0].arrival.as_secs(), 0.0);
        assert_eq!(wl.jobs[0].work(), 400.0); // 100 s × 4 procs
        assert_eq!(
            (wl.jobs[0].min_replicas(), wl.jobs[0].max_replicas()),
            (4, 4)
        );
        assert_eq!(wl.jobs[1].arrival.as_secs(), 30.0);
        assert_eq!(wl.jobs[1].priority, 2); // queue 2 → priority 2
                                            // Field 9 (requested time) is the walltime estimate.
        assert_eq!(wl.jobs[0].walltime_estimate.unwrap().as_secs(), 120.0);
        assert_eq!(wl.jobs[1].walltime_estimate.unwrap().as_secs(), 240.0);
        assert!(wl.validate().is_ok());
    }

    #[test]
    fn walltime_estimate_falls_back_to_actual_runtime() {
        // requested_s = -1: the estimate borrows the actual run time.
        let text = "1 0 -1 100 4 -1 -1 4 -1 -1 1 -1 -1 -1 1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(wl.jobs[0].walltime_estimate.unwrap().as_secs(), 100.0);
        // run_s = -1: runtime AND estimate both come from requested_s.
        let text = "1 0 -1 -1 4 -1 -1 4 300 -1 1 -1 -1 -1 1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(wl.jobs[0].work(), 300.0 * 4.0);
        assert_eq!(wl.jobs[0].walltime_estimate.unwrap().as_secs(), 300.0);
    }

    #[test]
    fn crlf_lines_parse_identically() {
        let unix = "1 0 -1 100 4 -1 -1 4 -1 -1 1 -1 -1 -1 1 -1 -1 -1\n";
        let dos = "1 0 -1 100 4 -1 -1 4 -1 -1 1 -1 -1 -1 1 -1 -1 -1\r\n";
        let a = load_workload(unix.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        let b = load_workload(dos.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_fields_fall_back_between_pairs() {
        // requested_procs = -1 → allocated; run_s = -1 → requested_s.
        let text = "5 10 -1 -1 16 -1 -1 -1 300 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(wl.jobs[0].work(), 300.0 * 16.0);
        assert_eq!(wl.jobs[0].max_replicas(), 16);
        assert_eq!(wl.jobs[0].priority, 1); // queue -1 → priority 1
    }

    #[test]
    fn truncated_trailing_fields_read_as_missing() {
        // Only the first 9 fields present — fields 10..18 default to -1.
        let text = "3 5 -1 60 2 -1 -1 2 90\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(8)).unwrap();
        assert_eq!(wl.jobs[0].work(), 120.0);
    }

    #[test]
    fn zero_processor_record_is_a_typed_error() {
        let text = "1 0 -1 100 0 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        match load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)) {
            Err(SwfError::ZeroProcessors { line: 1, job_id: 1 }) => {}
            other => panic!("expected ZeroProcessors, got {other:?}"),
        }
    }

    #[test]
    fn missing_runtime_is_a_typed_error() {
        let text = "1 0 -1 -1 4 -1 -1 4 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n";
        match load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)) {
            Err(SwfError::MissingRuntime { line: 1, job_id: 1 }) => {}
            other => panic!("expected MissingRuntime, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_arrival_is_a_typed_error() {
        let text = "\
1 100 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 50 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        match load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)) {
            Err(SwfError::OutOfOrderArrival { line: 2, .. }) => {}
            other => panic!("expected OutOfOrderArrival, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_name_the_field() {
        let few = "1 0 -1\n";
        match load_workload(few.as_bytes(), &SwfLoadConfig::rigid(64)) {
            Err(SwfError::Malformed { line: 1, reason }) => {
                assert!(reason.contains("missing field 4"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let junk = "1 zero -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        match load_workload(junk.as_bytes(), &SwfLoadConfig::rigid(64)) {
            Err(SwfError::Malformed { line: 1, reason }) => {
                assert!(reason.contains("field 2"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let dup = "\
1 0 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
1 5 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        match load_workload(dup.as_bytes(), &SwfLoadConfig::rigid(64)) {
            Err(SwfError::Malformed { line: 2, reason }) => {
                assert!(reason.contains("duplicate"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn elastic_annotation_and_caps_apply() {
        let text = "\
1 0 -1 100 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 10 -1 100 128 -1 -1 128 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::elastic(64).take(2)).unwrap();
        assert_eq!(
            (wl.jobs[0].min_replicas(), wl.jobs[0].max_replicas()),
            (4, 16)
        );
        // 128 procs clamp to the 63 schedulable slots (64-slot cluster
        // minus the reserved launcher) before annotation, so work uses
        // the clamped count.
        assert_eq!(wl.jobs[1].work(), 100.0 * 63.0);
        assert_eq!(
            (wl.jobs[1].min_replicas(), wl.jobs[1].max_replicas()),
            (32, 64)
        );
    }

    #[test]
    fn machine_wide_jobs_clamp_to_schedulable_capacity() {
        // A job requesting the whole 32-slot machine must not produce
        // min_replicas = 32: with one launcher slot reserved per job no
        // policy could ever start it (it would starve forever). The
        // rigid annotation clamps it to the 31 schedulable slots.
        let text = "1 0 0 300 32 -1 -1 32 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(32)).unwrap();
        assert_eq!(
            (wl.jobs[0].min_replicas(), wl.jobs[0].max_replicas()),
            (31, 31)
        );
        assert_eq!(wl.jobs[0].work(), 300.0 * 31.0);

        // Custom min factors above 1 get the same guard on the min
        // bound.
        let aggressive = SwfLoadConfig {
            malleability: MalleabilityModel {
                min_factor: 1.5,
                max_factor: 2.0,
                cap: 32,
            },
            reserved_slots: 1,
            max_jobs: None,
        };
        let text = "1 0 0 300 24 -1 -1 24 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &aggressive).unwrap();
        assert!(wl.jobs[0].min_replicas() <= 31);
        assert!(wl.jobs[0].min_replicas() <= wl.jobs[0].max_replicas());
    }

    #[test]
    fn take_caps_the_stream() {
        let text = "\
1 0 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 1 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
3 2 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(4).take(2)).unwrap();
        assert_eq!(wl.len(), 2);
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let original = vec![rec(1, 0.0, 100.0, 4), rec(2, 30.5, 200.0, 8)];
        let mut buf = Vec::new();
        write_swf(&mut buf, original.clone()).unwrap();
        let parsed: Vec<SwfRecord> = records(buf.as_slice())
            .map(|r| r.map(|(_, rec)| rec))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn workload_writer_round_trips_through_the_loader() {
        let original = WorkloadSpec::new(vec![
            JobSpec::malleable("swf0000003", 4, 4, 400.0, 2)
                .at(Duration::from_secs(0.0))
                .with_walltime_estimate(Duration::from_secs(150.0)),
            JobSpec::malleable("swf0000007", 8, 8, 1600.0, 5).at(Duration::from_secs(60.0)),
        ]);
        let mut buf = Vec::new();
        write_workload(&mut buf, &original).unwrap();
        let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(loaded.jobs[0].name, "swf0000003");
        assert_eq!(loaded.jobs[0].work(), 400.0);
        assert_eq!(loaded.jobs[0].priority, 2);
        assert_eq!(
            loaded.jobs[0].walltime_estimate.unwrap().as_secs(),
            150.0,
            "explicit estimate survives via field 9"
        );
        // The estimate-less job wrote -1 into field 9; the loader's
        // fallback fills it with the actual runtime (400 s at 8 procs
        // on 1600 core-seconds = 200 s).
        assert_eq!(loaded.jobs[1].walltime_estimate.unwrap().as_secs(), 200.0);
        assert!(loaded.validate().is_ok());
    }

    #[test]
    fn workload_writer_never_emits_colliding_ids_for_mixed_names() {
        // "custom" would fall back to position 1 while "swf1" parses to
        // id 1 — the writer must notice the mixed naming and use
        // positions throughout, so its own output stays loadable.
        let mixed = WorkloadSpec::new(vec![
            JobSpec::malleable("custom", 2, 2, 100.0, 1),
            JobSpec::malleable("swf0000001", 2, 2, 100.0, 1).at(Duration::from_secs(5.0)),
        ]);
        let recs = workload_records(&mixed);
        assert_eq!(
            recs.iter().map(|r| r.job_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let mut buf = Vec::new();
        write_workload(&mut buf, &mixed).unwrap();
        let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(8)).unwrap();
        assert_eq!(loaded.len(), 2);
        // Same guard for duplicate parsed ids under different padding.
        let dup = WorkloadSpec::new(vec![
            JobSpec::malleable("swf1", 2, 2, 100.0, 1),
            JobSpec::malleable("swf01", 2, 2, 100.0, 1).at(Duration::from_secs(5.0)),
        ]);
        let recs = workload_records(&dup);
        assert_eq!(
            recs.iter().map(|r| r.job_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn status_5_records_load_with_a_cancellation() {
        // wait 30 + run 50: cancelled at submit(100) + 80 = 180.
        let text = "1 100 30 50 4 -1 -1 4 -1 -1 5 -1 -1 -1 1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(wl.jobs[0].cancel_at.unwrap().as_secs(), 180.0);
        // Missing wait reads as zero: cancelled at submit + run.
        let text = "1 100 -1 50 4 -1 -1 4 -1 -1 5 -1 -1 -1 1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(wl.jobs[0].cancel_at.unwrap().as_secs(), 150.0);
        // Completed records stay cancellation-free.
        let text = "1 100 30 50 4 -1 -1 4 -1 -1 1 -1 -1 -1 1 -1 -1 -1\n";
        let wl = load_workload(text.as_bytes(), &SwfLoadConfig::rigid(64)).unwrap();
        assert!(wl.jobs[0].cancel_at.is_none());
    }

    #[test]
    fn cancelled_jobs_round_trip_through_the_writer() {
        // Cancel after the full runtime: everything round-trips.
        let after = WorkloadSpec::new(vec![JobSpec::malleable("swf0000001", 4, 4, 400.0, 2)
            .at(Duration::from_secs(10.0))
            .cancelled_at(Duration::from_secs(500.0))]);
        let mut buf = Vec::new();
        write_workload(&mut buf, &after).unwrap();
        let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(loaded.jobs[0].cancel_at.unwrap().as_secs(), 500.0);
        assert_eq!(loaded.jobs[0].work(), 400.0);

        // Mid-run cancel: cancel_at exact, work clamps to the partial
        // runtime the archive record captures.
        let mid = WorkloadSpec::new(vec![JobSpec::malleable("swf0000001", 4, 4, 400.0, 2)
            .at(Duration::from_secs(10.0))
            .cancelled_at(Duration::from_secs(40.0))]);
        let mut buf = Vec::new();
        write_workload(&mut buf, &mid).unwrap();
        let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(loaded.jobs[0].cancel_at.unwrap().as_secs(), 40.0);
        assert_eq!(loaded.jobs[0].work(), 30.0 * 4.0);

        // Cancel at arrival (estimate-less): runtime falls back through
        // the requested-time field, so the record stays loadable and
        // work survives exactly.
        let at_arrival = WorkloadSpec::new(vec![JobSpec::malleable("swf0000001", 4, 4, 400.0, 2)
            .at(Duration::from_secs(10.0))
            .cancelled_at(Duration::from_secs(10.0))]);
        let mut buf = Vec::new();
        write_workload(&mut buf, &at_arrival).unwrap();
        let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
        assert_eq!(loaded.jobs[0].cancel_at.unwrap().as_secs(), 10.0);
        assert_eq!(loaded.jobs[0].work(), 400.0);

        // Cancel before arrival is a no-op and is dropped.
        let noop = WorkloadSpec::new(vec![JobSpec::malleable("swf0000001", 4, 4, 400.0, 2)
            .at(Duration::from_secs(10.0))
            .cancelled_at(Duration::from_secs(5.0))]);
        let mut buf = Vec::new();
        write_workload(&mut buf, &noop).unwrap();
        let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
        assert!(loaded.jobs[0].cancel_at.is_none());
    }

    proptest::proptest! {
        /// parse(serialize(parse(serialize(r)))) == parse(serialize(r)):
        /// the textual form is a fixed point after one round trip, for
        /// arbitrary integral-and-fractional field values.
        #[test]
        fn round_trip_is_stable(
            job_id in 0u64..1_000_000,
            submit in 0u64..10_000_000,
            run in 1u64..1_000_000,
            procs in 1i64..100_000,
            queue in -1i64..64,
            frac in 0u64..4,
        ) {
            let r = SwfRecord {
                // Mix integral and fractional times (quarters survive
                // f64 round-tripping exactly).
                submit_s: submit as f64 + frac as f64 * 0.25,
                run_s: run as f64,
                queue,
                ..rec(job_id, 0.0, 0.0, procs)
            };
            let mut buf = Vec::new();
            write_swf(&mut buf, [r]).unwrap();
            let (_, once) = records(buf.as_slice()).next().unwrap().unwrap();
            proptest::prop_assert_eq!(once, r);
            let mut buf2 = Vec::new();
            write_swf(&mut buf2, [once]).unwrap();
            let (_, twice) = records(buf2.as_slice()).next().unwrap().unwrap();
            proptest::prop_assert_eq!(twice, once);
        }

        /// Record-level round trip for the walltime pair specifically:
        /// the requested-time field survives serialization whether it is
        /// a real estimate or the `-1` missing sentinel, and the loaded
        /// workload's estimate follows the requested→actual fallback.
        #[test]
        fn walltime_fields_and_sentinels_round_trip(
            run in 1u64..100_000,
            procs in 1i64..64,
            has_estimate in proptest::any::<bool>(),
            estimate in 1u64..200_000,
        ) {
            let requested_s = if has_estimate { estimate as f64 } else { -1.0 };
            let r = SwfRecord { requested_s, ..rec(1, 0.0, run as f64, procs) };
            let mut buf = Vec::new();
            write_swf(&mut buf, [r]).unwrap();
            let (_, parsed) = records(buf.as_slice()).next().unwrap().unwrap();
            proptest::prop_assert_eq!(parsed, r);
            let wl = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
            let expect = if has_estimate { estimate as f64 } else { run as f64 };
            proptest::prop_assert_eq!(
                wl.jobs[0].walltime_estimate.unwrap().as_secs(),
                expect
            );
        }

        /// Status-5 round trip: for any cancellation offset ≥ 0 the
        /// loaded `cancel_at` is exactly the written one, and work
        /// survives exactly whenever the cancellation falls at or after
        /// the job's full runtime (the only lossless regime an archive
        /// record allows — earlier cancels record the partial run).
        #[test]
        fn cancel_at_round_trips_through_status_5(
            submit in 0u64..1_000_000,
            run in 1u64..10_000,
            procs in 1i64..32,
            offset in 0u64..50_000,
        ) {
            let work = run as f64 * procs as f64;
            let cancel = (submit + offset) as f64;
            let original = WorkloadSpec::new(vec![JobSpec::malleable(
                "swf0000001",
                procs as u32,
                procs as u32,
                work,
                1,
            )
            .at(Duration::from_secs(submit as f64))
            .cancelled_at(Duration::from_secs(cancel))]);
            let recs = workload_records(&original);
            proptest::prop_assert_eq!(recs[0].status, 5);
            let mut buf = Vec::new();
            write_workload(&mut buf, &original).unwrap();
            let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(64)).unwrap();
            proptest::prop_assert_eq!(
                loaded.jobs[0].cancel_at.unwrap().as_secs(),
                cancel
            );
            if offset >= run {
                proptest::prop_assert!((loaded.jobs[0].work() - work).abs() < 1e-9);
            }
            proptest::prop_assert!(loaded.validate().is_ok());
        }

        /// Workload-level round trip: write → load under a rigid config
        /// reproduces every field of a rigid workload exactly (the only
        /// non-identity is the documented walltime fallback for jobs
        /// written without an estimate).
        #[test]
        fn workload_write_then_load_is_identity_for_rigid_workloads(
            n in 1usize..12,
            seed in proptest::any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut at = 0u64;
            let jobs: Vec<JobSpec> = (0..n).map(|i| {
                at += rng.gen_range(0..600);
                let procs = rng.gen_range(1..=31u32);
                let runtime = rng.gen_range(1..=10_000u64) as f64;
                let mut j = JobSpec::malleable(
                    format!("swf{:07}", i + 1),
                    procs,
                    procs,
                    runtime * f64::from(procs),
                    rng.gen_range(1..=5),
                )
                .at(Duration::from_secs(at as f64));
                if rng.gen_bool(0.7) {
                    j = j.with_walltime_estimate(
                        Duration::from_secs(rng.gen_range(1..=20_000u64) as f64),
                    );
                }
                j
            }).collect();
            let original = WorkloadSpec::new(jobs);
            let mut buf = Vec::new();
            write_workload(&mut buf, &original).unwrap();
            let loaded = load_workload(buf.as_slice(), &SwfLoadConfig::rigid(32)).unwrap();
            proptest::prop_assert_eq!(loaded.len(), original.len());
            for (a, b) in original.jobs.iter().zip(&loaded.jobs) {
                proptest::prop_assert_eq!(&a.name, &b.name);
                proptest::prop_assert_eq!(a.arrival, b.arrival);
                proptest::prop_assert_eq!(a.priority, b.priority);
                proptest::prop_assert_eq!(a.min_replicas(), b.min_replicas());
                proptest::prop_assert_eq!(a.max_replicas(), b.max_replicas());
                proptest::prop_assert!((a.work() - b.work()).abs() < 1e-6);
                match a.walltime_estimate {
                    Some(est) => proptest::prop_assert_eq!(Some(est), b.walltime_estimate),
                    // -1 sentinel: the loader fills the estimate from
                    // the actual runtime.
                    None => proptest::prop_assert_eq!(
                        b.walltime_estimate.unwrap().as_secs(),
                        a.work() / f64::from(a.max_replicas())
                    ),
                }
            }
        }
    }
}
