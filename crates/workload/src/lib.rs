//! # hpc-workload — the first-class workload layer
//!
//! One unified job model — [`WorkloadSpec`] — feeds every engine in the
//! workspace: the discrete-event simulator (`sched_sim::simulate`), the
//! operator harness (`elastic_core::run_workload_virtual`) and the
//! bench binaries. A job carries its own **arrival time**, replica
//! bounds (a paper [`SizeClass`] *or* explicit malleable bounds), a
//! work estimate, a **walltime estimate** (the user's claimed runtime,
//! SWF field 9 — what reservation-based backfilling like
//! `elastic_core::EasyBackfill` plans from), a priority and an
//! optional cancellation time — so a workload is a self-contained
//! replayable trace, not a job list plus out-of-band submission-gap
//! conventions.
//!
//! Three producers ship with the crate, plus the export side:
//!
//! * [`swf`] — a streaming parser for the Standard Workload Format
//!   (Feitelson's SWF, the archive format of the malleable-scheduling
//!   literature), with a configurable malleability annotation à la
//!   Zojer, Posner & Özden. Walltime estimates load with a
//!   requested→actual fallback, so every loadable record carries one.
//! * [`swf::write_workload`] — the SWF *writer*: any `WorkloadSpec`
//!   (generated, annotated, or programmatic) exports as an SWF stream
//!   that round-trips through the parser (proptested, including the
//!   walltime field and its `-1` sentinel).
//! * [`generator::generate_workload`] — the paper's seeded random
//!   16-job/4-class generator (§4.3.1).
//! * [`generator::poisson_workload`] — a heavy-traffic synthetic
//!   generator with exponential (Poisson-process) interarrivals, the
//!   trace-shaped alternative to a fixed submission gap.
//!
//! Multi-week archives replay in bounded simulation time via the
//! timeline knobs: [`WorkloadSpec::compress_arrivals`] divides every
//! arrival/cancellation instant by a factor (preserving relative
//! order), and [`WorkloadSpec::scale_work`] scales runtimes to match
//! when the load factor should stay constant.
//!
//! ## Plugging a new trace format
//!
//! A trace loader is just a function producing a [`WorkloadSpec`]: map
//! each record to a [`JobSpec`] (name, arrival, bounds, work, priority),
//! call [`WorkloadSpec::new`], and [`WorkloadSpec::validate`] enforces
//! the engine contract (unique names, sane bounds, nondecreasing
//! arrivals). Nothing downstream knows where a workload came from — the
//! DES, the operator harness and the report layer consume the same
//! struct. See [`swf::load_workload`] for the worked example.
//!
//! ## How malleability annotation maps processors to replica bounds
//!
//! SWF jobs are rigid: one requested-processor count `p`. The
//! [`MalleabilityModel`] turns `p` into scheduler bounds
//! `min = clamp(ceil(p · min_factor), 1, cap)` and
//! `max = clamp(ceil(p · max_factor), min, cap)`, and the job's work is
//! `runtime · p` core-seconds under a linear speedup model — so a
//! *rigid* annotation (`min_factor = max_factor = 1`) reproduces the
//! trace's runtimes exactly, while an elastic annotation
//! ([`MalleabilityModel::elastic`]) lets the policies shrink/expand
//! inside the scaled envelope exactly as the synthetic-malleability
//! methodology of Zojer et al. prescribes.

#![warn(missing_docs)]

pub mod fault;
pub mod generator;
pub mod malleability;
pub mod spec;
pub mod swf;

pub use fault::{FaultError, FaultEvent, FaultKind, FaultSpec, FlakyEvent, FlakyOp, FlakySpec};
pub use generator::{generate_workload, poisson_workload};
pub use malleability::MalleabilityModel;
pub use spec::{shard_seed, JobShape, JobSpec, SizeClass, WorkloadError, WorkloadSpec};
pub use swf::{
    load_workload, workload_records, write_swf, write_workload, SwfError, SwfLoadConfig, SwfRecord,
};
