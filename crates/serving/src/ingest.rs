//! Sharded, batched submission ingest with explicit backpressure.
//!
//! [`IngestQueue`] fronts a [`SchedulerClient`] with N independent
//! shards, each a bounded buffer of validated [`SubmitRequest`]s.
//! Submitters are routed round-robin or by name hash; a shard flushes
//! its buffer into the store — one batch of `create`s the operator's
//! watch drain turns into a *single*
//! [`SchedulingPolicy::on_submit_burst`] dispatch — when it reaches
//! [`IngestConfig::batch_size`] jobs, or when
//! [`IngestQueue::pump`] finds its oldest entry older than
//! [`IngestConfig::max_delay`]. Every submission gets an explicit
//! answer:
//!
//! * [`SubmitResponse::Admitted`] — the push itself completed a size-K
//!   batch; the job is in the store and the ticket is real.
//! * [`SubmitResponse::Queued`] — buffered, awaiting flush; `depth` is
//!   the accepting shard's backlog.
//! * [`SubmitResponse::Shed`] — the shard's bounded buffer is full;
//!   the submission was rejected and the client should back off
//!   `retry_after` before retrying.
//!
//! With `max_delay = 0` and a pump before every operator reconcile the
//! queue degenerates to same-instant coalescing, which is why a trace
//! driven through it replays bit-identically to the legacy
//! per-submission client loop (see the workspace `serving_replay`
//! test).
//!
//! [`SchedulingPolicy::on_submit_burst`]:
//! elastic_core::SchedulingPolicy::on_submit_burst

use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use elastic_core::{JobTicket, SchedulerClient, SchedulerError, SubmitRequest, SubmitResponse};
use hpc_metrics::{Clock, Duration, SimTime};

/// How submissions are routed to ingest shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRouter {
    /// Strict rotation over the shards — best spread under uniform
    /// load.
    RoundRobin,
    /// Stable hash of the job name — all submissions of one name land
    /// on one shard, so per-name ordering survives sharding.
    HashByName,
}

/// Ingest front-end knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Independent submission shards (each with its own lock and
    /// buffer).
    pub shards: usize,
    /// Bounded buffer per shard; a full shard sheds.
    pub shard_capacity: usize,
    /// Flush a shard as soon as it holds this many jobs (size-K
    /// trigger).
    pub batch_size: usize,
    /// Flush a shard when its oldest entry has waited this long
    /// (deadline-T trigger, checked by [`IngestQueue::pump`]). Zero
    /// means "flush on every pump" — the deterministic-replay setting.
    pub max_delay: Duration,
    /// Suggested client backoff carried in [`SubmitResponse::Shed`].
    pub retry_after: Duration,
    /// The routing discipline.
    pub router: ShardRouter,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            shards: 4,
            shard_capacity: 4096,
            batch_size: 256,
            max_delay: Duration::from_millis(5.0),
            retry_after: Duration::from_millis(50.0),
            router: ShardRouter::RoundRobin,
        }
    }
}

/// Counters the ingest queue maintains (snapshot via
/// [`IngestQueue::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Submissions accepted into a shard (includes later flush
    /// rejects).
    pub accepted: u64,
    /// Submissions shed by backpressure.
    pub shed: u64,
    /// Batch flushes performed.
    pub batches: u64,
    /// Jobs created in the store across all flushes.
    pub flushed: u64,
    /// Jobs that reached a flush but failed store creation (duplicate
    /// names, …); the errors are retrievable via
    /// [`IngestQueue::take_errors`].
    pub rejected: u64,
}

impl IngestStats {
    /// Mean jobs per flushed batch (0 when nothing flushed) — the
    /// batch-amortization figure: the operator runs one policy burst
    /// dispatch per drained batch, not per job.
    pub fn jobs_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.flushed as f64 / self.batches as f64
        }
    }
}

struct Pending {
    req: SubmitRequest,
    enqueued_at: SimTime,
}

#[derive(Default)]
struct Ledger {
    stats: IngestStats,
    /// Per-flushed-job submit→admit latency (enqueue to store create),
    /// in seconds.
    latencies: Vec<f64>,
    /// Store-level failures surfaced at flush time.
    errors: Vec<(String, SchedulerError)>,
}

/// The sharded, batched submission front-end (see the module docs).
pub struct IngestQueue {
    client: SchedulerClient,
    clock: Arc<dyn Clock>,
    cfg: IngestConfig,
    shards: Vec<Mutex<VecDeque<Pending>>>,
    rr: AtomicUsize,
    closed: AtomicBool,
    ledger: Mutex<Ledger>,
}

impl IngestQueue {
    /// An ingest queue flushing into `client` (deadlines and latencies
    /// timed on the client's clock).
    pub fn new(client: SchedulerClient, cfg: IngestConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one ingest shard");
        assert!(cfg.shard_capacity >= 1, "shard capacity must be >= 1");
        assert!(cfg.batch_size >= 1, "batch size must be >= 1");
        let shards = (0..cfg.shards)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        IngestQueue {
            clock: client.clock(),
            client,
            cfg,
            shards,
            rr: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            ledger: Mutex::new(Ledger::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    fn route(&self, name: &str) -> usize {
        match self.cfg.router {
            ShardRouter::RoundRobin => self.rr.fetch_add(1, Ordering::Relaxed) % self.cfg.shards,
            ShardRouter::HashByName => {
                let mut h = DefaultHasher::new();
                name.hash(&mut h);
                (h.finish() as usize) % self.cfg.shards
            }
        }
    }

    /// Submits a validated request to its shard. Never blocks on the
    /// store: the request is buffered ([`SubmitResponse::Queued`]),
    /// completes a size-K batch inline ([`SubmitResponse::Admitted`]),
    /// or is rejected by backpressure ([`SubmitResponse::Shed`]).
    /// Errors only for a closed queue.
    pub fn submit(&self, req: SubmitRequest) -> Result<SubmitResponse, SchedulerError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SchedulerError::QueueClosed);
        }
        let shard = self.route(req.name());
        let mut buf = self.shards[shard].lock().expect("ingest shard poisoned");
        if buf.len() >= self.cfg.shard_capacity {
            self.ledger.lock().expect("ledger poisoned").stats.shed += 1;
            return Ok(SubmitResponse::Shed {
                retry_after: self.cfg.retry_after,
            });
        }
        let name = req.name().to_string();
        buf.push_back(Pending {
            req,
            enqueued_at: self.clock.now(),
        });
        let depth = buf.len();
        self.ledger.lock().expect("ledger poisoned").stats.accepted += 1;
        if depth >= self.cfg.batch_size {
            // The push completed a batch: flush inline and answer with
            // this submission's real ticket.
            let ticket = self.flush_buf(&mut buf, Some(&name));
            if let Some(ticket) = ticket {
                return Ok(SubmitResponse::Admitted { ticket });
            }
            // Our own creation failed (duplicate name): surface it.
            let mut ledger = self.ledger.lock().expect("ledger poisoned");
            if let Some(pos) = ledger.errors.iter().position(|(n, _)| n == &name) {
                let (_, err) = ledger.errors.remove(pos);
                ledger.stats.rejected -= 1;
                return Err(err);
            }
            unreachable!("inline flush neither admitted nor rejected {name}");
        }
        Ok(SubmitResponse::Queued { depth })
    }

    /// Flushes every shard whose oldest entry has waited at least
    /// [`IngestConfig::max_delay`] by `now`. Returns the number of jobs
    /// pushed into the store. Call once per serving loop iteration
    /// (before the operator reconcile).
    pub fn pump(&self, now: SimTime) -> usize {
        let mut flushed = 0;
        for shard in &self.shards {
            let mut buf = shard.lock().expect("ingest shard poisoned");
            let due = buf
                .front()
                .is_some_and(|p| now - p.enqueued_at >= self.cfg.max_delay);
            if due {
                flushed += buf.len();
                self.flush_buf(&mut buf, None);
            }
        }
        flushed
    }

    /// Unconditionally flushes every shard (shutdown / end-of-trace).
    pub fn flush_all(&self) -> usize {
        let mut flushed = 0;
        for shard in &self.shards {
            let mut buf = shard.lock().expect("ingest shard poisoned");
            flushed += buf.len();
            self.flush_buf(&mut buf, None);
        }
        flushed
    }

    /// Flushes `buf` into the store as one batch; when `want` names one
    /// of the buffered jobs, returns its ticket.
    fn flush_buf(&self, buf: &mut VecDeque<Pending>, want: Option<&str>) -> Option<JobTicket> {
        if buf.is_empty() {
            return None;
        }
        let now = self.clock.now();
        let mut ledger = self.ledger.lock().expect("ledger poisoned");
        ledger.stats.batches += 1;
        let mut wanted = None;
        for pending in buf.drain(..) {
            let name = pending.req.name().to_string();
            match self.client.submit_request(pending.req) {
                Ok(resp) => {
                    ledger.stats.flushed += 1;
                    ledger.latencies.push((now - pending.enqueued_at).as_secs());
                    if want == Some(name.as_str()) {
                        wanted = resp.ticket().cloned();
                    }
                }
                Err(err) => {
                    ledger.stats.rejected += 1;
                    ledger.errors.push((name, err));
                }
            }
        }
        wanted
    }

    /// Jobs currently buffered across all shards.
    pub fn depth(&self) -> usize {
        self.shard_depths().iter().sum()
    }

    /// Per-shard buffered job counts.
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("ingest shard poisoned").len())
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IngestStats {
        self.ledger.lock().expect("ledger poisoned").stats
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of submit→admit latency over every
    /// flushed job, or `None` before the first flush.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let ledger = self.ledger.lock().expect("ledger poisoned");
        if ledger.latencies.is_empty() {
            return None;
        }
        let mut sorted = ledger.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(Duration::from_secs(sorted[idx]))
    }

    /// Drains the store-level errors collected at flush time
    /// (`(job name, error)` pairs — duplicates, mostly).
    pub fn take_errors(&self) -> Vec<(String, SchedulerError)> {
        std::mem::take(&mut self.ledger.lock().expect("ledger poisoned").errors)
    }

    /// Closes the queue: subsequent [`submit`](IngestQueue::submit)s
    /// fail with [`SchedulerError::QueueClosed`]. Already-buffered jobs
    /// still flush via [`pump`](IngestQueue::pump) /
    /// [`flush_all`](IngestQueue::flush_all).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::crd::CharmJob;
    use elastic_core::CharmJobSpec;
    use hpc_metrics::VirtualClock;
    use kube_sim::Store;

    fn queue(cfg: IngestConfig) -> (IngestQueue, Store<CharmJob>, VirtualClock) {
        let clock = VirtualClock::new();
        let jobs: Store<CharmJob> = Store::new();
        let client = SchedulerClient::new(jobs.clone(), Arc::new(clock.clone()));
        (IngestQueue::new(client, cfg), jobs, clock)
    }

    fn req(name: &str) -> SubmitRequest {
        let spec = CharmJobSpec::builder(name).rigid(2).build().unwrap();
        SubmitRequest::v1(spec).unwrap()
    }

    #[test]
    fn buffers_until_batch_size_then_flushes_inline() {
        let (q, jobs, _) = queue(IngestConfig {
            shards: 1,
            batch_size: 3,
            ..Default::default()
        });
        assert_eq!(
            q.submit(req("a")).unwrap(),
            SubmitResponse::Queued { depth: 1 }
        );
        assert_eq!(
            q.submit(req("b")).unwrap(),
            SubmitResponse::Queued { depth: 2 }
        );
        assert!(jobs.is_empty(), "nothing flushed below the K threshold");
        // The third push completes the batch: everyone lands at once
        // and the pusher gets a real ticket back.
        let resp = q.submit(req("c")).unwrap();
        let ticket = resp.ticket().expect("size-K flush admits inline");
        assert_eq!(ticket.name, "c");
        assert_eq!(jobs.len(), 3);
        assert_eq!(q.depth(), 0);
        let stats = q.stats();
        assert_eq!((stats.accepted, stats.batches, stats.flushed), (3, 1, 3));
        assert_eq!(stats.jobs_per_batch(), 3.0);
    }

    #[test]
    fn pump_flushes_on_deadline_only() {
        let (q, jobs, clock) = queue(IngestConfig {
            shards: 1,
            batch_size: 100,
            max_delay: Duration::from_secs(5.0),
            ..Default::default()
        });
        q.submit(req("a")).unwrap();
        assert_eq!(q.pump(clock.now()), 0, "deadline not reached");
        clock.advance(Duration::from_secs(5.0));
        assert_eq!(q.pump(clock.now()), 1);
        assert_eq!(jobs.len(), 1);
        // The flushed job waited the full deadline.
        assert_eq!(q.latency_quantile(1.0).unwrap(), Duration::from_secs(5.0));
    }

    #[test]
    fn shed_then_retry_round_trip() {
        let cfg = IngestConfig {
            shards: 1,
            shard_capacity: 2,
            batch_size: 100,
            max_delay: Duration::ZERO,
            retry_after: Duration::from_millis(50.0),
            ..Default::default()
        };
        let (q, jobs, clock) = queue(cfg);
        q.submit(req("a")).unwrap();
        q.submit(req("b")).unwrap();
        // Full shard: the third submission is shed with a backoff hint.
        let resp = q.submit(req("c")).unwrap();
        assert_eq!(
            resp,
            SubmitResponse::Shed {
                retry_after: Duration::from_millis(50.0)
            }
        );
        assert!(resp.is_shed());
        assert!(jobs.get("c").is_none(), "shed submission must not land");
        // The client backs off, the server drains, the retry succeeds:
        // the round trip loses nothing and duplicates nothing.
        clock.advance(Duration::from_millis(50.0));
        q.pump(clock.now());
        assert_eq!(
            q.submit(req("c")).unwrap(),
            SubmitResponse::Queued { depth: 1 }
        );
        q.flush_all();
        assert_eq!(jobs.len(), 3);
        let stats = q.stats();
        assert_eq!((stats.shed, stats.flushed, stats.rejected), (1, 3, 0));
    }

    #[test]
    fn hash_router_keeps_a_name_on_one_shard() {
        let cfg = IngestConfig {
            shards: 8,
            batch_size: 100,
            router: ShardRouter::HashByName,
            ..Default::default()
        };
        let (q, _, _) = queue(cfg);
        for i in 0..16 {
            q.submit(req(&format!("user-a-{}", i % 2))).unwrap();
        }
        // Two distinct names → at most two occupied shards, each with
        // all copies of its name... except duplicates: use unique names
        // per shard check instead.
        let occupied: Vec<usize> = q.shard_depths().into_iter().filter(|&d| d > 0).collect();
        assert!(occupied.len() <= 2);
        assert_eq!(occupied.iter().sum::<usize>(), 16);
    }

    #[test]
    fn duplicate_names_surface_as_flush_rejects() {
        let (q, jobs, clock) = queue(IngestConfig {
            shards: 1,
            batch_size: 100,
            max_delay: Duration::ZERO,
            ..Default::default()
        });
        q.submit(req("dup")).unwrap();
        q.pump(clock.now());
        q.submit(req("dup")).unwrap();
        q.pump(clock.now());
        assert_eq!(jobs.len(), 1);
        let stats = q.stats();
        assert_eq!(stats.rejected, 1);
        let errors = q.take_errors();
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0].1, SchedulerError::AlreadyExists(_)));
        assert!(q.take_errors().is_empty(), "errors drain once");
    }

    #[test]
    fn closed_queue_rejects_submissions_but_flushes_backlog() {
        let (q, jobs, _) = queue(IngestConfig {
            shards: 1,
            batch_size: 100,
            ..Default::default()
        });
        q.submit(req("a")).unwrap();
        q.close();
        assert!(matches!(
            q.submit(req("b")),
            Err(SchedulerError::QueueClosed)
        ));
        assert_eq!(q.flush_all(), 1);
        assert_eq!(jobs.len(), 1);
    }
}
