//! # elastic-serving — the production submission front-end
//!
//! `elastic-core`'s [`SchedulerClient`] is a direct, synchronous
//! surface: one submission, one store create, one watch event, one
//! policy decision. That is the right primitive — and the wrong shape
//! for a serving tier taking tens of thousands of submissions per
//! second. This crate is the layer between the two: a concurrent
//! front-end over the store-shaped client that batches, backpressures
//! and broadcasts, without ever bypassing the client API underneath.
//!
//! ## Batched ingest with explicit backpressure
//!
//! [`IngestQueue`] shards submissions over N independent bounded
//! buffers ([`ShardRouter::RoundRobin`] or
//! [`ShardRouter::HashByName`]), accumulating each shard into a batch
//! that flushes on **size K** ([`IngestConfig::batch_size`]) or
//! **deadline T** ([`IngestConfig::max_delay`]). A flush is one run of
//! store creates the operator's watch drain coalesces into a *single*
//! [`SchedulingPolicy::on_submit_burst`] dispatch — a 100k-submission
//! storm costs O(batches) policy invocations, not O(jobs)
//! ([`InstrumentedPolicy`] counts them; the `serving_load` bench
//! asserts the amortization). Every submission is answered explicitly:
//! [`SubmitResponse::Admitted`] (the push completed a batch — the
//! ticket is real), [`SubmitResponse::Queued`] with the shard depth, or
//! [`SubmitResponse::Shed`] with a retry-after hint when the bounded
//! buffer is full. Load shedding is a *first-class answer*, not an
//! error: the `shed_then_retry_round_trip` test pins the full
//! backoff-and-resubmit cycle.
//!
//! Batching does not cost determinism: with `max_delay = 0` and a pump
//! per drive-loop round, flushes happen at the enqueue instant and the
//! operator sorts same-instant admissions canonically, so
//! [`run_workload_ingest`] replays a trace **bit-identically** to the
//! legacy per-submission loop, for any shard count (the workspace
//! `serving_replay` test asserts equality of the full `RunMetrics`).
//!
//! ## The lifecycle event bus
//!
//! [`EventBus`] fans the client's single-consumer
//! [`watch_events`](elastic_core::SchedulerClient::watch_events) stream
//! out to any number of [`Subscriber`]s through a bounded ring. A slow
//! subscriber never stalls the bus: once it falls behind by more than
//! the ring capacity its next poll answers [`BusPoll::Lagged`] with the
//! exact missed count, and [`Subscriber::resync`] recovers by fetching
//! a full status snapshot from the store — the source of truth the
//! events were derived from — and resuming gap-free from the ring
//! head.
//!
//! [`SchedulerClient`]: elastic_core::SchedulerClient
//! [`SchedulingPolicy::on_submit_burst`]:
//! elastic_core::SchedulingPolicy::on_submit_burst
//! [`SubmitResponse::Admitted`]: elastic_core::SubmitResponse::Admitted
//! [`SubmitResponse::Queued`]: elastic_core::SubmitResponse::Queued
//! [`SubmitResponse::Shed`]: elastic_core::SubmitResponse::Shed

#![warn(missing_docs)]

pub mod bus;
pub mod harness;
pub mod ingest;
pub mod instrument;

pub use bus::{BusPoll, EventBus, Subscriber};
pub use harness::run_workload_ingest;
pub use ingest::{IngestConfig, IngestQueue, IngestStats, ShardRouter};
pub use instrument::{DispatchCounters, InstrumentedPolicy};
