//! Workload replay through the batched ingest front-end.
//!
//! [`run_workload_ingest`] is the serving-layer counterpart of
//! `elastic_core::run_workload_virtual`: the same virtual-clock drive
//! loop, except every submission enters through an [`IngestQueue`]
//! (buffer → batch → flush) instead of a direct client call. With
//! `max_delay = 0` the queue flushes at the enqueue instant, every
//! batch lands with the timestamps the direct path would have produced,
//! and the operator's admission pass sorts same-instant arrivals
//! identically — so the replay is **bit-identical** to the legacy
//! submit loop, for any shard count, on fault-free traces. The
//! workspace `serving_replay` test pins that equivalence.

use elastic_core::{CharmOperator, RunMetrics, Schedule, SubmitRequest};
use hpc_metrics::{Clock, Duration, VirtualClock};
use hpc_workload::WorkloadSpec;

use crate::ingest::{IngestConfig, IngestQueue, IngestStats};

/// Replays a fault-free [`WorkloadSpec`] through `op` with submissions
/// routed through a fresh [`IngestQueue`] configured by `cfg`. Panics
/// if the workload carries fault events (the fault stores are owned by
/// the core harness) or fails to finish within `max_time`.
///
/// A shed submission is retried once after pumping the queue at the
/// same instant; a second shed panics — deterministic replay requires
/// capacity for every arrival, so size `cfg.shard_capacity` to the
/// trace's largest same-instant burst.
pub fn run_workload_ingest(
    op: &mut CharmOperator,
    clock: &VirtualClock,
    workload: &WorkloadSpec,
    tick: Duration,
    max_time: Duration,
    cfg: IngestConfig,
) -> (RunMetrics, IngestStats) {
    assert!(tick.as_secs() > 0.0, "tick must be positive");
    assert!(
        workload.faults.events.is_empty() && workload.faults.flaky.events.is_empty(),
        "ingest replay drives fault-free traces only"
    );
    workload.validate().expect("replayable workload");
    let schedule = Schedule::from_workload(workload);
    let client = op.client();
    let queue = IngestQueue::new(client.clone(), cfg);
    let start = clock.now();
    let mut next_submit = 0usize;
    let mut next_cancel = 0usize;
    loop {
        let now = clock.now();
        let elapsed = now - start;
        // Enqueue every arrival due this instant…
        while next_submit < schedule.jobs.len() && elapsed >= schedule.submit_at(next_submit) {
            let req = SubmitRequest::v1(schedule.jobs[next_submit].clone()).expect("valid spec");
            let resp = queue.submit(req.clone()).expect("queue open");
            if resp.is_shed() {
                // Drain the backlog and retry once at the same instant.
                queue.pump(now);
                let retried = queue.submit(req).expect("queue open");
                assert!(
                    !retried.is_shed(),
                    "shard shed twice at one instant; raise shard_capacity"
                );
            }
            next_submit += 1;
        }
        // …flush deadline-due shards (with max_delay = 0 that is all of
        // them, at the arrival instant — the bit-identity setting)…
        queue.pump(now);
        // …then cancellations, exactly where the legacy pump issues
        // them: after the instant's submissions have landed.
        while next_cancel < schedule.cancellations.len()
            && elapsed >= schedule.cancellations[next_cancel].0
        {
            let _ = client.cancel(&schedule.cancellations[next_cancel].1);
            next_cancel += 1;
        }
        // Triple drain: completion → free → admit → launch settles
        // within one instant (see run_workload_virtual).
        op.tick();
        op.tick();
        op.tick();
        if next_submit >= schedule.jobs.len() && queue.depth() == 0 && op.all_complete() {
            let rejects = queue.take_errors();
            assert!(
                rejects.is_empty(),
                "flush-time rejects on a validated trace: {rejects:?}"
            );
            return (op.metrics(), queue.stats());
        }
        assert!(
            elapsed <= max_time,
            "workload did not complete within {max_time}s (queued: {:?})",
            op.queued_jobs()
        );
        clock.advance(tick);
    }
}
