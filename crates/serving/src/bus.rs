//! A multi-subscriber lifecycle event bus with bounded ring buffers,
//! lag detection, and store-snapshot recovery.
//!
//! [`SchedulerClient::watch_events`] is a single-consumer stream: one
//! receiver, unbounded. [`EventBus`] turns it into a broadcast surface:
//! one pump drains the stream into a bounded ring shared by every
//! [`Subscriber`], each of which reads at its own pace through a
//! sequence cursor. A subscriber that falls more than the ring's
//! capacity behind does **not** stall the bus or grow memory without
//! bound — the ring simply overwrites, and the subscriber's next poll
//! answers [`BusPoll::Lagged`] with the exact number of events it
//! missed. Recovery is [`Subscriber::resync`]: fetch a full status
//! snapshot from the store (the source of truth the events were derived
//! from), jump the cursor to the head of the ring, and resume in-order,
//! gap-free tailing from there. The snapshot may repeat state the
//! subscriber already saw — consumers must treat it as *current state*,
//! not as a delta — but nothing between the snapshot and the resumed
//! tail can be lost, because events are published only after the store
//! update they describe.
//!
//! [`SchedulerClient::watch_events`]:
//! elastic_core::SchedulerClient::watch_events

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use elastic_core::{CharmJobStatus, JobEvent, JobEventStream, SchedulerClient};

/// What a [`Subscriber`] poll produced.
#[derive(Debug, Clone, PartialEq)]
pub enum BusPoll {
    /// The next lifecycle event, in publication order.
    Event(JobEvent),
    /// The subscriber fell behind and the ring overwrote `missed`
    /// events it never saw. The cursor has been advanced to the oldest
    /// retained event; call [`Subscriber::resync`] to rebuild state
    /// from a store snapshot before continuing.
    Lagged {
        /// Events lost to ring overwrite.
        missed: u64,
    },
    /// Nothing new since the last poll.
    Empty,
}

struct Ring {
    buf: VecDeque<JobEvent>,
    /// Sequence number the *next* published event will get; the oldest
    /// retained event is `next_seq - buf.len()`.
    next_seq: u64,
    capacity: usize,
}

impl Ring {
    fn base(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }
}

/// The broadcast half: publish lifecycle events into a bounded ring
/// (see the module docs).
#[derive(Clone)]
pub struct EventBus {
    ring: Arc<Mutex<Ring>>,
}

impl EventBus {
    /// A bus retaining the most recent `capacity` events for slow
    /// subscribers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be >= 1");
        EventBus {
            ring: Arc::new(Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 0,
                capacity,
            })),
        }
    }

    /// Publishes one event, evicting the oldest retained event if the
    /// ring is full.
    pub fn publish(&self, event: JobEvent) {
        let mut ring = self.ring.lock().expect("event ring poisoned");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(event);
        ring.next_seq += 1;
    }

    /// Drains every pending event from `stream` onto the bus; returns
    /// how many were published. Call once per serving loop iteration —
    /// the bus is the fan-out for the one watch stream the serving
    /// layer owns.
    pub fn pump_from(&self, stream: &mut JobEventStream) -> usize {
        let mut n = 0;
        while let Some(ev) = stream.try_next() {
            self.publish(ev);
            n += 1;
        }
        n
    }

    /// A new subscriber, positioned at the *current head*: it sees
    /// events published after this call, never history.
    pub fn subscribe(&self) -> Subscriber {
        let cursor = self.ring.lock().expect("event ring poisoned").next_seq;
        Subscriber {
            ring: Arc::clone(&self.ring),
            cursor,
        }
    }

    /// Total events ever published.
    pub fn published(&self) -> u64 {
        self.ring.lock().expect("event ring poisoned").next_seq
    }
}

/// One consumer's cursor into the bus (see [`EventBus::subscribe`]).
pub struct Subscriber {
    ring: Arc<Mutex<Ring>>,
    cursor: u64,
}

impl Subscriber {
    /// The next event at this subscriber's cursor, [`BusPoll::Lagged`]
    /// if the ring overwrote events it never saw (tokio-broadcast
    /// semantics: the lag is reported once, then reading resumes from
    /// the oldest retained event), or [`BusPoll::Empty`].
    pub fn poll(&mut self) -> BusPoll {
        let ring = self.ring.lock().expect("event ring poisoned");
        let base = ring.base();
        if self.cursor < base {
            let missed = base - self.cursor;
            self.cursor = base;
            return BusPoll::Lagged { missed };
        }
        if self.cursor == ring.next_seq {
            return BusPoll::Empty;
        }
        let ev = ring.buf[(self.cursor - base) as usize].clone();
        self.cursor += 1;
        BusPoll::Event(ev)
    }

    /// Lagging-subscriber recovery: a full `(name, status)` snapshot
    /// from the store, with the cursor jumped to the ring head so
    /// subsequent polls tail gap-free from the snapshot point. Taken
    /// under the ring lock, so no event published before the snapshot
    /// can appear on the resumed tail as a phantom "future" transition
    /// — at worst the snapshot repeats what a tailed event will also
    /// say, which is safe because the snapshot carries current state,
    /// not deltas.
    pub fn resync(&mut self, client: &SchedulerClient) -> Vec<(String, CharmJobStatus)> {
        let ring = self.ring.lock().expect("event ring poisoned");
        let snapshot = client.list_status();
        self.cursor = ring.next_seq;
        snapshot
    }

    /// Events currently buffered ahead of this subscriber (saturates at
    /// the ring capacity once lagging).
    pub fn backlog(&self) -> u64 {
        let ring = self.ring.lock().expect("event ring poisoned");
        ring.next_seq - self.cursor.max(ring.base())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::JobEventKind;
    use hpc_metrics::SimTime;

    fn ev(job: &str, secs: f64) -> JobEvent {
        JobEvent {
            job: job.into(),
            at: SimTime::from_secs(secs),
            kind: JobEventKind::Submitted,
        }
    }

    #[test]
    fn subscribers_tail_independently_and_in_order() {
        let bus = EventBus::new(16);
        let mut fast = bus.subscribe();
        let mut slow = bus.subscribe();
        bus.publish(ev("a", 1.0));
        bus.publish(ev("b", 2.0));
        assert_eq!(fast.poll(), BusPoll::Event(ev("a", 1.0)));
        assert_eq!(fast.poll(), BusPoll::Event(ev("b", 2.0)));
        assert_eq!(fast.poll(), BusPoll::Empty);
        // The slow subscriber still sees everything, from its own
        // cursor.
        assert_eq!(slow.backlog(), 2);
        assert_eq!(slow.poll(), BusPoll::Event(ev("a", 1.0)));
        assert_eq!(slow.poll(), BusPoll::Event(ev("b", 2.0)));
    }

    #[test]
    fn new_subscribers_start_at_the_head() {
        let bus = EventBus::new(4);
        bus.publish(ev("old", 1.0));
        let mut sub = bus.subscribe();
        assert_eq!(sub.poll(), BusPoll::Empty, "no history replay");
        bus.publish(ev("new", 2.0));
        assert_eq!(sub.poll(), BusPoll::Event(ev("new", 2.0)));
    }

    #[test]
    fn lag_is_reported_exactly_once_with_exact_count() {
        let bus = EventBus::new(3);
        let mut sub = bus.subscribe();
        for i in 0..8 {
            bus.publish(ev(&format!("j{i}"), i as f64));
        }
        // Capacity 3, 8 published, cursor at 0: events 0..=4 are gone.
        assert_eq!(sub.poll(), BusPoll::Lagged { missed: 5 });
        // After the lag report, reading resumes at the oldest retained
        // event with no further gap.
        assert_eq!(sub.poll(), BusPoll::Event(ev("j5", 5.0)));
        assert_eq!(sub.poll(), BusPoll::Event(ev("j6", 6.0)));
        assert_eq!(sub.poll(), BusPoll::Event(ev("j7", 7.0)));
        assert_eq!(sub.poll(), BusPoll::Empty);
        assert_eq!(bus.published(), 8);
    }

    #[test]
    fn backlog_saturates_at_capacity_when_lagging() {
        let bus = EventBus::new(2);
        let mut sub = bus.subscribe();
        for i in 0..10 {
            bus.publish(ev(&format!("j{i}"), i as f64));
        }
        assert_eq!(sub.backlog(), 2);
        assert!(matches!(sub.poll(), BusPoll::Lagged { missed: 8 }));
    }
}
