//! Policy-dispatch instrumentation: counts how many times the engine
//! actually invoked the policy, proving the batched ingest path
//! amortizes dispatch.
//!
//! [`InstrumentedPolicy`] wraps any [`SchedulingPolicy`] and forwards
//! every hook unchanged while counting burst dispatches and per-job
//! decisions on shared atomics; the detached [`DispatchCounters`]
//! handle reads them while the operator owns the policy. The headline
//! figure is [`DispatchCounters::jobs_per_submit_dispatch`]: under the
//! batched ingest path a 100k-submission burst storm should cost
//! O(batches) policy invocations, not O(jobs) — the `serving_load`
//! bench and its CI smoke assert exactly that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elastic_core::{Action, ClusterView, CompleteBurst, SchedulingPolicy, SubmitBurst};
use hpc_metrics::{Duration, JobId, SimTime};
use hpc_workload::FaultEvent;

#[derive(Default)]
struct Counts {
    submit_bursts: AtomicU64,
    complete_bursts: AtomicU64,
    submit_calls: AtomicU64,
    complete_calls: AtomicU64,
}

/// Read-side handle onto an [`InstrumentedPolicy`]'s counters; clones
/// share the same counters.
#[derive(Clone)]
pub struct DispatchCounters {
    counts: Arc<Counts>,
}

impl DispatchCounters {
    /// Engine→policy submission *burst* dispatches (one per drained
    /// batch of same-instant arrivals).
    pub fn submit_bursts(&self) -> u64 {
        self.counts.submit_bursts.load(Ordering::Relaxed)
    }

    /// Engine→policy completion burst dispatches.
    pub fn complete_bursts(&self) -> u64 {
        self.counts.complete_bursts.load(Ordering::Relaxed)
    }

    /// Per-job `on_submit` decisions taken (inside or outside bursts).
    pub fn submit_calls(&self) -> u64 {
        self.counts.submit_calls.load(Ordering::Relaxed)
    }

    /// Per-completion `on_complete` decisions taken.
    pub fn complete_calls(&self) -> u64 {
        self.counts.complete_calls.load(Ordering::Relaxed)
    }

    /// Jobs decided per submission burst dispatch — the batch
    /// amortization factor (0 before the first burst).
    pub fn jobs_per_submit_dispatch(&self) -> f64 {
        let bursts = self.submit_bursts();
        if bursts == 0 {
            0.0
        } else {
            self.submit_calls() as f64 / bursts as f64
        }
    }
}

/// A transparent [`SchedulingPolicy`] decorator that counts dispatches
/// (see the module docs). Behaviour is bit-identical to the inner
/// policy: every hook forwards verbatim, including the burst hooks.
pub struct InstrumentedPolicy {
    inner: Box<dyn SchedulingPolicy>,
    counts: Arc<Counts>,
}

impl InstrumentedPolicy {
    /// Wraps `inner`, returning the policy (give it to the operator)
    /// and the counter handle (keep it).
    pub fn wrap(inner: Box<dyn SchedulingPolicy>) -> (Box<dyn SchedulingPolicy>, DispatchCounters) {
        let counts = Arc::new(Counts::default());
        let handle = DispatchCounters {
            counts: Arc::clone(&counts),
        };
        (Box::new(InstrumentedPolicy { inner, counts }), handle)
    }
}

impl SchedulingPolicy for InstrumentedPolicy {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn launcher_slots(&self) -> u32 {
        self.inner.launcher_slots()
    }

    fn on_submit(&self, view: &ClusterView, job: JobId, now: SimTime) -> Vec<Action> {
        self.counts.submit_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.on_submit(view, job, now)
    }

    fn on_complete(&self, view: &ClusterView, now: SimTime) -> Vec<Action> {
        self.counts.complete_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.on_complete(view, now)
    }

    fn on_timer(&self, view: &ClusterView, now: SimTime) -> Vec<Action> {
        self.inner.on_timer(view, now)
    }

    fn timer_interval(&self) -> Option<Duration> {
        self.inner.timer_interval()
    }

    fn on_fault(&self, view: &ClusterView, fault: &FaultEvent, now: SimTime) -> Vec<Action> {
        self.inner.on_fault(view, fault, now)
    }

    fn on_submit_burst(&self, burst: &mut dyn SubmitBurst) {
        self.counts.submit_bursts.fetch_add(1, Ordering::Relaxed);
        // The inner policy's burst loop calls its *own* on_submit, not
        // this wrapper's, so per-job decisions are counted by shimming
        // the burst driver instead.
        let mut shim = CountingBurst {
            inner: burst,
            pulls: &self.counts.submit_calls,
        };
        self.inner.on_submit_burst(&mut shim);
    }

    fn on_complete_burst(&self, burst: &mut dyn CompleteBurst) {
        self.counts.complete_bursts.fetch_add(1, Ordering::Relaxed);
        let mut shim = CountingCompleteBurst {
            inner: burst,
            retires: &self.counts.complete_calls,
        };
        self.inner.on_complete_burst(&mut shim);
    }
}

/// Burst shim counting each admitted job as one per-job decision,
/// since the inner policy's burst loop calls its own `on_submit`
/// directly (not through the wrapper).
struct CountingBurst<'a> {
    inner: &'a mut dyn SubmitBurst,
    pulls: &'a AtomicU64,
}

impl SubmitBurst for CountingBurst<'_> {
    fn view(&self) -> &ClusterView {
        self.inner.view()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn admit_next(&mut self) -> Option<JobId> {
        let next = self.inner.admit_next();
        if next.is_some() {
            self.pulls.fetch_add(1, Ordering::Relaxed);
        }
        next
    }

    fn apply(&mut self, actions: &[Action]) {
        self.inner.apply(actions);
    }
}

struct CountingCompleteBurst<'a> {
    inner: &'a mut dyn CompleteBurst,
    retires: &'a AtomicU64,
}

impl CompleteBurst for CountingCompleteBurst<'_> {
    fn view(&self) -> &ClusterView {
        self.inner.view()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn retire_next(&mut self) -> bool {
        let more = self.inner.retire_next();
        if more {
            self.retires.fetch_add(1, Ordering::Relaxed);
        }
        more
    }

    fn apply(&mut self, actions: &[Action]) {
        self.inner.apply(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::{FcfsBackfill, JobState};

    struct VecBurst {
        view: ClusterView,
        jobs: Vec<JobId>,
        now: SimTime,
    }

    impl SubmitBurst for VecBurst {
        fn view(&self) -> &ClusterView {
            &self.view
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn admit_next(&mut self) -> Option<JobId> {
            self.jobs.pop()
        }
        fn apply(&mut self, _actions: &[Action]) {}
    }

    #[test]
    fn counts_bursts_and_per_job_decisions() {
        let (policy, counters) = InstrumentedPolicy::wrap(Box::new(FcfsBackfill::new()));
        assert_eq!(policy.name(), "fcfs_backfill");
        assert_eq!(counters.jobs_per_submit_dispatch(), 0.0);

        // One burst of 3 same-instant arrivals: one dispatch, three
        // per-job decisions. (`apply` here is a no-op — only counting
        // is under test.)
        let mut view = ClusterView::new(8);
        let ids: Vec<JobId> = (0..3)
            .map(|i| {
                let id = JobId(i);
                view.insert(
                    JobState {
                        id,
                        min_replicas: 1,
                        max_replicas: 1,
                        priority: 3,
                        submitted_at: SimTime::ZERO,
                        replicas: 0,
                        last_action: SimTime::NEG_INFINITY,
                        running: false,
                        walltime_estimate: None,
                    },
                    1,
                );
                id
            })
            .collect();
        let mut burst = VecBurst {
            view,
            jobs: ids,
            now: SimTime::ZERO,
        };
        policy.on_submit_burst(&mut burst);
        assert_eq!(counters.submit_bursts(), 1);
        assert_eq!(counters.submit_calls(), 3);
        assert_eq!(counters.jobs_per_submit_dispatch(), 3.0);
        assert_eq!(counters.complete_bursts(), 0);
        assert_eq!(counters.complete_calls(), 0);
    }
}
