//! Lagging-subscriber recovery, end to end: a subscriber sleeps past
//! the ring capacity, observes `Lagged` with the exact missed count,
//! re-syncs from a store snapshot, and resumes an in-order, gap-free
//! tail.

use std::sync::Arc;

use elastic_core::crd::CharmJob;
use elastic_core::{CharmJobSpec, JobEventKind, JobPhase, SchedulerClient, SubmitRequest};
use elastic_serving::{BusPoll, EventBus};
use hpc_metrics::{SimTime, VirtualClock};
use kube_sim::Store;

fn submit(client: &SchedulerClient, name: &str) {
    let spec = CharmJobSpec::builder(name).rigid(1).build().unwrap();
    client
        .submit_request(SubmitRequest::v1(spec).unwrap())
        .unwrap();
}

#[test]
fn lagged_subscriber_resyncs_from_snapshot_and_resumes_gap_free() {
    let clock = VirtualClock::new();
    let jobs: Store<CharmJob> = Store::new();
    let client = SchedulerClient::new(jobs.clone(), Arc::new(clock.clone()));
    let bus = EventBus::new(4);
    let mut stream = client.watch_events();
    let mut sub = bus.subscribe();

    // The subscriber sleeps while ten submissions flow through a
    // capacity-4 ring: events 0..=5 are overwritten before it wakes.
    for i in 0..10 {
        submit(&client, &format!("j{i}"));
    }
    assert_eq!(bus.pump_from(&mut stream), 10);
    assert_eq!(sub.poll(), BusPoll::Lagged { missed: 6 });

    // Recovery: a full status snapshot from the store covers every job
    // whose event was lost, and the cursor jumps to the ring head.
    let snapshot = sub.resync(&client);
    assert_eq!(snapshot.len(), 10, "snapshot covers the missed jobs too");
    assert!(snapshot
        .iter()
        .all(|(_, status)| status.phase == JobPhase::Queued));
    assert_eq!(sub.poll(), BusPoll::Empty, "resync consumes the backlog");

    // Post-recovery traffic arrives in order with no gaps and no
    // further lag reports.
    for i in 0..3 {
        jobs.update(&format!("j{i}"), |j| {
            j.status.phase = JobPhase::Running;
            j.status.started_at = Some(SimTime::from_secs(1.0 + i as f64));
        })
        .unwrap();
    }
    bus.pump_from(&mut stream);
    let mut tail = Vec::new();
    loop {
        match sub.poll() {
            BusPoll::Event(ev) => tail.push((ev.job, ev.kind)),
            BusPoll::Empty => break,
            lag @ BusPoll::Lagged { .. } => panic!("unexpected {lag:?} after resync"),
        }
    }
    assert_eq!(
        tail,
        vec![
            ("j0".to_string(), JobEventKind::Started),
            ("j1".to_string(), JobEventKind::Started),
            ("j2".to_string(), JobEventKind::Started),
        ]
    );
}
