//! Per-executor health checking by consecutive failures.
//!
//! The nebula resource-lifecycle pattern: every executor in the pool
//! carries a consecutive-failure count; a success resets it, and at the
//! threshold the executor is declared unhealthy and evicted from the
//! pool. Tracking *consecutive* rather than total failures means a
//! long-lived executor with occasional hiccups is never evicted, while
//! one that goes dark is evicted after exactly `threshold` misses.

use std::collections::HashMap;

use hpc_metrics::JobId;

/// Tracks consecutive failures per executor and flags eviction at the
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthChecker {
    threshold: u32,
    misses: HashMap<JobId, u32>,
}

impl HealthChecker {
    /// A checker evicting after `threshold` consecutive failures.
    pub fn new(threshold: u32) -> HealthChecker {
        assert!(threshold > 0, "a zero threshold would evict on sight");
        HealthChecker {
            threshold,
            misses: HashMap::new(),
        }
    }

    /// Records a failed health probe (missed heartbeat) for `id`.
    /// Returns `true` when the consecutive count reaches the threshold
    /// — the executor is unhealthy and must be evicted; its count is
    /// reset so a relaunched attempt starts clean.
    pub fn record_miss(&mut self, id: JobId) -> bool {
        let count = self.misses.entry(id).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            self.misses.remove(&id);
            true
        } else {
            false
        }
    }

    /// Records a healthy probe: resets `id`'s consecutive count.
    pub fn record_healthy(&mut self, id: JobId) {
        self.misses.remove(&id);
    }

    /// Drops all state for `id` (the executor left the pool).
    pub fn forget(&mut self, id: JobId) {
        self.misses.remove(&id);
    }

    /// Consecutive misses currently held against `id`.
    pub fn misses(&self, id: JobId) -> u32 {
        self.misses.get(&id).copied().unwrap_or(0)
    }

    /// Executors currently carrying at least one miss.
    pub fn tracked(&self) -> usize {
        self.misses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_at_consecutive_threshold_only() {
        let mut h = HealthChecker::new(3);
        let a = JobId(1);
        assert!(!h.record_miss(a));
        assert!(!h.record_miss(a));
        h.record_healthy(a);
        assert_eq!(h.misses(a), 0, "a healthy probe resets the count");
        assert!(!h.record_miss(a));
        assert!(!h.record_miss(a));
        assert!(h.record_miss(a), "third consecutive miss evicts");
        assert_eq!(h.misses(a), 0, "eviction resets for the relaunch");
    }

    #[test]
    fn executors_are_tracked_independently() {
        let mut h = HealthChecker::new(2);
        assert!(!h.record_miss(JobId(1)));
        assert!(!h.record_miss(JobId(2)));
        assert!(h.record_miss(JobId(1)));
        assert_eq!(h.misses(JobId(2)), 1);
        h.forget(JobId(2));
        assert_eq!(h.tracked(), 0);
    }
}
