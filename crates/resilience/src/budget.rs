//! The token-bucket retry budget.
//!
//! Exponential backoff alone spaces retries out but never bounds their
//! *number*: a long outage still generates one retry per victim per
//! backoff step, and a thundering herd of requeued jobs re-fails in
//! lockstep. A retry *budget* bounds the total: every retry withdraws
//! one token, every successful operation deposits a fraction of one,
//! and a dry bucket denies the retry outright. The sustained retry
//! rate is thereby capped at `deposit_per_success × success rate` —
//! proportional to how healthy the system actually is.

/// A token-bucket retry budget: withdraw 1 per retry, deposit
/// `deposit_per_success` per success, balance capped at the initial
/// allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryBudget {
    balance: f64,
    cap: f64,
    deposit_per_success: f64,
    deposited: f64,
    withdrawn: u64,
}

impl RetryBudget {
    /// A budget starting (and capped) at `initial` tokens, refilled by
    /// `deposit_per_success` tokens per recorded success.
    pub fn new(initial: f64, deposit_per_success: f64) -> RetryBudget {
        assert!(
            initial.is_finite() && initial >= 0.0,
            "initial budget must be finite and nonnegative"
        );
        assert!(
            deposit_per_success.is_finite() && deposit_per_success >= 0.0,
            "deposit must be finite and nonnegative"
        );
        RetryBudget {
            balance: initial,
            cap: initial,
            deposit_per_success,
            deposited: 0.0,
            withdrawn: 0,
        }
    }

    /// Tries to withdraw one token for a retry. `false` means the
    /// budget is dry and the retry must be denied.
    pub fn try_withdraw(&mut self) -> bool {
        if self.balance >= 1.0 {
            self.balance -= 1.0;
            self.withdrawn += 1;
            true
        } else {
            false
        }
    }

    /// Deposits `deposit_per_success` tokens (saturating at the cap).
    pub fn record_success(&mut self) {
        self.deposited += self.deposit_per_success;
        self.balance = (self.balance + self.deposit_per_success).min(self.cap);
    }

    /// Tokens currently available.
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// Total withdrawals (approved retries) over the budget's lifetime.
    pub fn withdrawn(&self) -> u64 {
        self.withdrawn
    }

    /// Gross tokens deposited (before the cap) over the lifetime.
    pub fn deposited(&self) -> f64 {
        self.deposited
    }

    /// The bucket cap (= the initial allowance).
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dry_budget_denies_and_successes_refill() {
        let mut b = RetryBudget::new(2.0, 0.5);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "two tokens, two retries, then dry");
        b.record_success();
        assert!(!b.try_withdraw(), "0.5 tokens is still under 1");
        b.record_success();
        assert!(b.try_withdraw(), "two successes funded one retry");
        assert_eq!(b.withdrawn(), 3);
    }

    #[test]
    fn deposits_saturate_at_the_cap() {
        let mut b = RetryBudget::new(1.0, 10.0);
        b.record_success();
        b.record_success();
        assert_eq!(b.balance(), 1.0, "balance never exceeds the cap");
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }

    #[test]
    fn zero_budget_is_no_retry() {
        let mut b = RetryBudget::new(0.0, 0.0);
        assert!(!b.try_withdraw());
        b.record_success();
        assert!(!b.try_withdraw());
    }

    proptest! {
        /// The budget invariant the issue names: withdrawals never
        /// exceed deposits plus the initial balance, and the balance
        /// stays within [0, cap], under any interleaving of successes
        /// and withdrawal attempts.
        #[test]
        fn withdrawals_never_exceed_deposits_plus_initial(
            initial in 0.0f64..16.0,
            deposit in 0.0f64..4.0,
            ops in proptest::collection::vec(0u8..2, 0..128),
        ) {
            let mut b = RetryBudget::new(initial, deposit);
            for op in ops {
                if op == 0 {
                    let _ = b.try_withdraw();
                } else {
                    b.record_success();
                }
                prop_assert!(b.balance() >= 0.0);
                prop_assert!(b.balance() <= b.cap() + 1e-9);
                prop_assert!(
                    b.withdrawn() as f64 <= initial + b.deposited() + 1e-9,
                    "withdrew {} with only {} initial + {} deposited",
                    b.withdrawn(), initial, b.deposited()
                );
            }
        }
    }
}
