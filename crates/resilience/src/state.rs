//! The shared flaky-fault decision core both engines embed.
//!
//! The repo's signature guarantee — DES and operator replays of one
//! workload are bit-identical — extends to the resilience layer by
//! construction: *all* breaker/budget/health decisions live in this one
//! struct, and both engines drive it with the same calls at the same
//! event boundaries. An engine never consults the primitives directly;
//! it reports a [`FlakyOp`] (plus the deterministic victim it selected)
//! and acts on the returned [`FlakyOutcome`] through its own existing
//! kill/requeue/evict machinery.

use hpc_metrics::{JobId, SimTime};
use hpc_workload::{FlakyOp, FlakySpec};

use crate::breaker::CircuitBreaker;
use crate::budget::RetryBudget;
use crate::health::HealthChecker;

/// What an engine must do about one transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlakyOutcome {
    /// Nothing: no running victim existed, or a heartbeat miss accrued
    /// below the health threshold.
    Observed,
    /// The breaker is open — the operation was never attempted, so
    /// nobody is killed.
    Absorbed,
    /// Budget-approved retry: kill the victim and requeue it through
    /// the engine's backoff machinery.
    Retry,
    /// Aborted stuck rescale: checkpoint-evict the victim (roll back
    /// to the last checkpoint boundary and relaunch).
    Evict,
    /// The retry budget is dry: the victim fails permanently.
    Deny,
}

/// Breaker + budget + health checker plus the transient-fault tallies
/// [`RunMetrics`]-style reports carry. One instance per engine run.
///
/// [`RunMetrics`]: https://docs.rs/elastic-core
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceState {
    /// Cluster-level circuit breaker over control-plane operations.
    pub breaker: CircuitBreaker,
    /// Token-bucket retry budget bounding retry storms.
    pub budget: RetryBudget,
    /// Per-executor consecutive-heartbeat-miss tracking.
    pub health: HealthChecker,
    transient_faults: u32,
}

impl ResilienceState {
    /// State configured from a workload's [`FlakySpec`].
    pub fn new(spec: &FlakySpec) -> ResilienceState {
        ResilienceState {
            breaker: CircuitBreaker::new(spec.breaker_threshold, spec.breaker_cooldown),
            budget: RetryBudget::new(spec.retry_budget, spec.retry_deposit),
            health: HealthChecker::new(spec.health_threshold),
            transient_faults: 0,
        }
    }

    /// Decides what to do about a scheduled transient fault firing at
    /// `now` against `victim` (the engine's deterministic target
    /// selection; `None` when no executor was running).
    pub fn on_flaky(&mut self, op: FlakyOp, victim: Option<JobId>, now: SimTime) -> FlakyOutcome {
        self.transient_faults = self.transient_faults.saturating_add(1);
        let Some(victim) = victim else {
            return FlakyOutcome::Observed;
        };
        if !self.breaker.allows(now) {
            // Open breaker: the control plane has stopped issuing the
            // flaky operation, so the fault has nothing to break.
            return FlakyOutcome::Absorbed;
        }
        // The operation was attempted and failed.
        self.breaker.record_failure(now);
        match op {
            FlakyOp::StuckRescale => FlakyOutcome::Evict,
            FlakyOp::HeartbeatMiss => {
                if self.health.record_miss(victim) {
                    self.retry_or_deny()
                } else {
                    FlakyOutcome::Observed
                }
            }
            FlakyOp::LaunchFail | FlakyOp::CrashOnStart => self.retry_or_deny(),
        }
    }

    fn retry_or_deny(&mut self) -> FlakyOutcome {
        if self.budget.try_withdraw() {
            FlakyOutcome::Retry
        } else {
            FlakyOutcome::Deny
        }
    }

    /// Records a job retiring successfully at `now`: feeds the breaker
    /// a success, deposits into the retry budget, and forgets the
    /// executor's health state.
    pub fn on_success(&mut self, id: JobId, now: SimTime) {
        self.breaker.record_success(now);
        self.budget.record_success();
        self.health.forget(id);
    }

    /// Transient faults observed (every scheduled flaky event that
    /// fired, whether or not it found a victim).
    pub fn transient_faults(&self) -> u32 {
        self.transient_faults
    }

    /// Budget-approved retries issued.
    pub fn retries(&self) -> u32 {
        u32::try_from(self.budget.withdrawn()).unwrap_or(u32::MAX)
    }

    /// Times the breaker tripped open.
    pub fn breaker_trips(&self) -> u32 {
        self.breaker.trips()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_metrics::Duration;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn decisions_follow_op_semantics() {
        let spec = FlakySpec::default().with_health_threshold(2);
        let mut rs = ResilienceState::new(&spec);
        let victim = Some(JobId(7));
        assert_eq!(
            rs.on_flaky(FlakyOp::LaunchFail, victim, t(1.0)),
            FlakyOutcome::Retry
        );
        assert_eq!(
            rs.on_flaky(FlakyOp::StuckRescale, victim, t(2.0)),
            FlakyOutcome::Evict
        );
        assert_eq!(
            rs.on_flaky(FlakyOp::HeartbeatMiss, victim, t(3.0)),
            FlakyOutcome::Observed,
            "first miss accrues"
        );
        assert_eq!(
            rs.on_flaky(FlakyOp::HeartbeatMiss, victim, t(4.0)),
            FlakyOutcome::Retry,
            "second consecutive miss evicts"
        );
        assert_eq!(
            rs.on_flaky(FlakyOp::CrashOnStart, None, t(5.0)),
            FlakyOutcome::Observed,
            "no victim, nothing to kill"
        );
        assert_eq!(rs.transient_faults(), 5);
        assert_eq!(rs.retries(), 2, "evictions and accruals are not retries");
    }

    #[test]
    fn open_breaker_absorbs_and_dry_budget_denies() {
        let spec = FlakySpec::default()
            .with_breaker(2, Duration::from_secs(100.0))
            .with_retry_budget(1.0, 0.0);
        let mut rs = ResilienceState::new(&spec);
        let victim = Some(JobId(1));
        assert_eq!(
            rs.on_flaky(FlakyOp::LaunchFail, victim, t(1.0)),
            FlakyOutcome::Retry
        );
        assert_eq!(
            rs.on_flaky(FlakyOp::LaunchFail, victim, t(2.0)),
            FlakyOutcome::Deny,
            "budget of 1 is spent"
        );
        assert_eq!(rs.breaker_trips(), 1, "two consecutive faults tripped it");
        assert_eq!(
            rs.on_flaky(FlakyOp::LaunchFail, victim, t(3.0)),
            FlakyOutcome::Absorbed,
            "open breaker absorbs"
        );
        // Past the cooldown the half-open probe is attempted again.
        assert_eq!(
            rs.on_flaky(FlakyOp::LaunchFail, victim, t(200.0)),
            FlakyOutcome::Deny,
            "probe attempted (and budget still dry)"
        );
        assert_eq!(rs.breaker_trips(), 2, "failed probe re-trips");
    }

    #[test]
    fn success_feeds_all_three_primitives() {
        let spec = FlakySpec::default()
            .with_breaker(5, Duration::from_secs(10.0))
            .with_retry_budget(1.0, 1.0)
            .with_health_threshold(2);
        let mut rs = ResilienceState::new(&spec);
        let victim = Some(JobId(3));
        let _ = rs.on_flaky(FlakyOp::HeartbeatMiss, victim, t(1.0));
        let _ = rs.on_flaky(FlakyOp::LaunchFail, victim, t(2.0)); // spends the budget
        rs.on_success(JobId(3), t(3.0));
        assert_eq!(rs.health.misses(JobId(3)), 0, "health state forgotten");
        assert_eq!(rs.breaker.consecutive_failures(), 0, "breaker count reset");
        assert_eq!(
            rs.on_flaky(FlakyOp::CrashOnStart, victim, t(4.0)),
            FlakyOutcome::Retry,
            "the success re-funded the budget"
        );
    }
}
