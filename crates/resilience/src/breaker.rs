//! The circuit breaker: Closed → Open → HalfOpen.
//!
//! A breaker fronts an unreliable dependency (a flaky executor pool, a
//! sick federation shard). While *Closed* it passes operations through
//! and counts consecutive failures; at the trip threshold it snaps
//! *Open* and fast-fails everything — no kills, no retries, no load on
//! the sick dependency — until the cooldown elapses, when it
//! *half-opens* and lets one probe decide: a success closes it, a
//! failure re-trips it for another cooldown.
//!
//! All transitions are driven by an explicit [`SimTime`] "now", never a
//! wall clock, so breaker behavior replays bit-identically in the DES
//! and the operator.

use hpc_metrics::{Duration, SimTime};

/// Where a [`CircuitBreaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Operations flow; consecutive failures are being counted.
    Closed,
    /// Tripped: operations fast-fail until the cooldown elapses.
    Open,
    /// Cooldown over: the next operation is a probe. Success closes
    /// the breaker, failure re-trips it.
    HalfOpen,
}

/// A consecutive-failure circuit breaker on a simulated clock.
///
/// Allocation-free: two counters, two instants, one enum.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
    trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// failures and cooling down for `cooldown` once open.
    /// `u32::MAX` as the threshold effectively disables tripping.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        assert!(threshold > 0, "a zero threshold would trip immediately");
        CircuitBreaker {
            threshold,
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
            trips: 0,
        }
    }

    /// Resolves the lazy Open → HalfOpen transition at `now`.
    fn advance(&mut self, now: SimTime) {
        if self.state == BreakerState::Open && now >= self.open_until {
            self.state = BreakerState::HalfOpen;
        }
    }

    /// The breaker's state as of `now` (without mutating it).
    pub fn state(&self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.open_until {
            BreakerState::HalfOpen
        } else {
            self.state
        }
    }

    /// Whether an operation may be attempted at `now`. `false` means
    /// the breaker is open and the caller must fast-fail (absorb) the
    /// operation instead of attempting it.
    pub fn allows(&mut self, now: SimTime) -> bool {
        self.advance(now);
        self.state != BreakerState::Open
    }

    /// Records a failed attempt at `now`. In Closed, accrues toward the
    /// threshold; in HalfOpen, re-trips immediately (the probe failed).
    pub fn record_failure(&mut self, now: SimTime) {
        self.advance(now);
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.consecutive_failures >= self.threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            // record_failure while Open is a caller bug (allows() said
            // no), but stay lenient: the failure was absorbed.
            BreakerState::Open => {}
        }
    }

    /// Records a successful operation at `now`: resets the consecutive
    /// count, and closes a half-open breaker.
    pub fn record_success(&mut self, now: SimTime) {
        self.advance(now);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.open_until = now + self.cooldown;
        self.consecutive_failures = 0;
        self.trips = self.trips.saturating_add(1);
    }

    /// How many times the breaker has tripped open (Closed/HalfOpen →
    /// Open transitions) over its lifetime.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Consecutive failures accrued toward the next trip.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn trips_at_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(60.0));
        assert_eq!(b.state(t(0.0)), BreakerState::Closed);
        b.record_failure(t(1.0));
        b.record_failure(t(2.0));
        assert!(b.allows(t(2.0)), "below threshold stays closed");
        b.record_failure(t(3.0));
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(t(3.0)), "tripped open");
        assert!(!b.allows(t(62.9)), "still cooling down");
        assert!(b.allows(t(63.0)), "cooldown elapsed: half-open probe");
        assert_eq!(b.state(t(63.0)), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_closes_failure_retrips() {
        let mut b = CircuitBreaker::new(1, Duration::from_secs(10.0));
        b.record_failure(t(0.0));
        assert!(b.allows(t(10.0)));
        b.record_failure(t(10.0));
        assert_eq!(b.trips(), 2, "failed probe re-trips");
        assert!(!b.allows(t(15.0)));
        assert!(b.allows(t(20.0)));
        b.record_success(t(20.0));
        assert_eq!(b.state(t(20.0)), BreakerState::Closed);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(2, Duration::from_secs(10.0));
        b.record_failure(t(0.0));
        b.record_success(t(1.0));
        b.record_failure(t(2.0));
        assert_eq!(b.state(t(2.0)), BreakerState::Closed);
        assert_eq!(b.trips(), 0, "non-consecutive failures never trip");
    }

    proptest! {
        /// State-machine property: replay a random op sequence and
        /// check the invariants a breaker must keep at every step —
        /// never allow while open before the cooldown, never hold a
        /// consecutive count at or past the threshold, trips only ever
        /// grow, and Open always carries a future-or-past `open_until`
        /// consistent with `allows`.
        #[test]
        fn breaker_state_machine_invariants(
            ops in proptest::collection::vec(0u8..3, 64..65),
            dts in proptest::collection::vec(0.0f64..10.0, 64..65),
        ) {
            let ops: Vec<(u8, f64)> = ops.into_iter().zip(dts).collect();
            let threshold = 3;
            let cooldown = Duration::from_secs(5.0);
            let mut b = CircuitBreaker::new(threshold, cooldown);
            let mut now = 0.0;
            let mut last_trips = 0;
            let mut tripped_at: Option<f64> = None;
            for (op, dt) in ops {
                now += dt;
                let at = t(now);
                match op {
                    0 => {
                        if b.allows(at) {
                            b.record_failure(at);
                        }
                    }
                    1 => b.record_success(at),
                    _ => { let _ = b.allows(at); }
                }
                prop_assert!(b.consecutive_failures() < threshold,
                    "count must reset on trip");
                prop_assert!(b.trips() >= last_trips, "trips only grow");
                if b.trips() > last_trips {
                    tripped_at = Some(now);
                }
                last_trips = b.trips();
                match b.state(at) {
                    BreakerState::Open => {
                        let since = now - tripped_at.expect("open implies a trip");
                        prop_assert!(since < cooldown.as_secs(),
                            "open past the cooldown must read half-open");
                        prop_assert!(!b.clone().allows(at), "open never allows");
                    }
                    BreakerState::Closed | BreakerState::HalfOpen => {
                        prop_assert!(b.clone().allows(at), "closed/half-open allow");
                    }
                }
            }
        }
    }
}
