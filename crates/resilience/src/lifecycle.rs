//! Phased shutdown and RAII slot leases.
//!
//! Shutting a pool down is three distinct phases, in order (the nebula
//! resource-manager pattern):
//!
//! 1. **Drain** — stop accepting new work; in-flight work finishes (or
//!    is forcibly retired by the caller's policy).
//! 2. **Cleanup** — release per-resource state: stop executors, drop
//!    leases, return slots. Only legal once draining has begun.
//! 3. **Terminate** — tear down the background machinery (threads,
//!    queues, stores). Only legal after cleanup.
//!
//! [`Lifecycle`] enforces the order at runtime (a skipped phase is a
//! caller bug and panics), and [`LeasePool`]/[`SlotLease`] make slot
//! accounting structural: a lease returns its slots on `Drop`, so an
//! evicted executor can never leak slots — even on a panic unwind.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The shutdown phase a pool or runtime is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownPhase {
    /// Accepting and executing work.
    Running,
    /// No new work; in-flight work finishing.
    Draining,
    /// Per-resource state being released.
    Cleanup,
    /// Fully shut down.
    Terminated,
}

/// A phase tracker enforcing drain → cleanup → terminate order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifecycle {
    phase: ShutdownPhase,
}

impl Default for Lifecycle {
    fn default() -> Self {
        Lifecycle::new()
    }
}

impl Lifecycle {
    /// A running lifecycle.
    pub fn new() -> Lifecycle {
        Lifecycle {
            phase: ShutdownPhase::Running,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> ShutdownPhase {
        self.phase
    }

    /// Whether new work may still be accepted.
    pub fn is_accepting(&self) -> bool {
        self.phase == ShutdownPhase::Running
    }

    /// Running → Draining.
    ///
    /// # Panics
    /// If shutdown already began.
    pub fn begin_drain(&mut self) {
        assert_eq!(
            self.phase,
            ShutdownPhase::Running,
            "drain must start from Running"
        );
        self.phase = ShutdownPhase::Draining;
    }

    /// Draining → Cleanup.
    ///
    /// # Panics
    /// If called before [`Lifecycle::begin_drain`] (phases cannot be
    /// skipped) or after cleanup already began.
    pub fn begin_cleanup(&mut self) {
        assert_eq!(
            self.phase,
            ShutdownPhase::Draining,
            "cleanup must follow drain"
        );
        self.phase = ShutdownPhase::Cleanup;
    }

    /// Cleanup → Terminated.
    ///
    /// # Panics
    /// If called before [`Lifecycle::begin_cleanup`].
    pub fn terminate(&mut self) {
        assert_eq!(
            self.phase,
            ShutdownPhase::Cleanup,
            "terminate must follow cleanup"
        );
        self.phase = ShutdownPhase::Terminated;
    }
}

/// Shared slot-lease accounting for an executor pool. Cheap to clone;
/// all clones observe the same outstanding count.
#[derive(Debug, Clone, Default)]
pub struct LeasePool {
    leased: Arc<AtomicU32>,
}

impl LeasePool {
    /// A pool with no outstanding leases.
    pub fn new() -> LeasePool {
        LeasePool::default()
    }

    /// Takes a lease on `slots` slots. The slots are returned when the
    /// [`SlotLease`] drops — structurally, not by caller discipline.
    pub fn lease(&self, slots: u32) -> SlotLease {
        self.leased.fetch_add(slots, Ordering::AcqRel);
        SlotLease {
            slots,
            pool: Arc::clone(&self.leased),
        }
    }

    /// Slots currently leased out.
    pub fn leased(&self) -> u32 {
        self.leased.load(Ordering::Acquire)
    }

    /// Asserts every lease was returned — the cleanup-phase postcondition.
    ///
    /// # Panics
    /// If any slots are still leased.
    pub fn assert_drained(&self) {
        let leaked = self.leased();
        assert_eq!(leaked, 0, "{leaked} slots leaked past cleanup");
    }
}

/// An RAII lease on pool slots; returns them on drop.
#[derive(Debug)]
pub struct SlotLease {
    slots: u32,
    pool: Arc<AtomicU32>,
}

impl SlotLease {
    /// Slots this lease holds.
    pub fn slots(&self) -> u32 {
        self.slots
    }
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        self.pool.fetch_sub(self.slots, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_run_in_order() {
        let mut lc = Lifecycle::new();
        assert!(lc.is_accepting());
        lc.begin_drain();
        assert!(!lc.is_accepting());
        lc.begin_cleanup();
        lc.terminate();
        assert_eq!(lc.phase(), ShutdownPhase::Terminated);
    }

    #[test]
    fn skipping_a_phase_panics() {
        let mut lc = Lifecycle::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| lc.begin_cleanup()));
        assert!(err.is_err(), "cleanup before drain must panic");
    }

    #[test]
    fn leases_return_slots_on_drop_even_through_panics() {
        let pool = LeasePool::new();
        let a = pool.lease(4);
        let b = pool.lease(2);
        assert_eq!(pool.leased(), 6);
        drop(a);
        assert_eq!(pool.leased(), 2);
        // A panic unwind still returns the slots (RAII, not discipline).
        let p = pool.clone();
        let _ = std::panic::catch_unwind(move || {
            let _guard = p.lease(8);
            panic!("executor died");
        });
        assert_eq!(pool.leased(), 2);
        drop(b);
        pool.assert_drained();
    }
}
