//! # elastic-resilience — resilience primitives for a flaky control plane
//!
//! PR 6's fault layer modeled *capacity* loss; this crate models the
//! control plane's own operations failing — the flakiest part of a real
//! cloud deployment — and the three classic primitives that keep a
//! scheduler healthy under it (the nebula resource-lifecycle patterns):
//!
//! * [`CircuitBreaker`] — Closed → Open → HalfOpen with a
//!   consecutive-failure threshold and a cooldown. While open,
//!   operations fast-fail instead of hammering a sick dependency;
//!   after the cooldown one probe decides whether to close or re-trip.
//! * [`RetryBudget`] — a token bucket: one token per retry, a fractional
//!   deposit per success. Where exponential backoff only *spaces*
//!   retries, the budget *bounds* them — the sustained retry rate can
//!   never exceed `deposit × success rate`.
//! * [`HealthChecker`] — per-executor consecutive-failure counts with
//!   threshold eviction, driven from the operator's timer pass.
//! * [`Lifecycle`] / [`LeasePool`] — phased `drain → cleanup →
//!   terminate` shutdown (order enforced, skipped phases panic) and
//!   RAII [`SlotLease`]s so an evicted executor structurally cannot
//!   leak slots.
//!
//! Everything is sim-clock driven ([`hpc_metrics::SimTime`] in, no wall
//! clocks) and allocation-light, so the primitives replay
//! bit-identically inside both the discrete-event simulator and the
//! watch-driven operator. [`ResilienceState`] bundles the three
//! primitives plus the transient-fault tallies and owns *every*
//! decision — both engines call [`ResilienceState::on_flaky`] /
//! [`ResilienceState::on_success`] at the same event boundaries and act
//! on the returned [`FlakyOutcome`], which is what keeps the
//! cross-engine `RunMetrics` guarantee intact for the resilience layer.
//!
//! ## Worked example: a breaker-gated scheduling policy
//!
//! A breaker wraps any `elastic_core::SchedulingPolicy`: faults feed
//! the breaker, completions reset it, and while it is open the cluster
//! stops admitting new jobs — they wait in the queue until the
//! half-open probe window instead of being launched into a sick
//! cluster.
//!
//! ```
//! use std::sync::Mutex;
//!
//! use elastic_core::{Action, ClusterView, FcfsBackfill, SchedulingPolicy};
//! use elastic_resilience::{BreakerState, CircuitBreaker};
//! use hpc_metrics::{Duration, JobId, SimTime};
//! use hpc_workload::FaultEvent;
//!
//! /// Holds admissions while the cluster's breaker is open.
//! struct BreakerGated {
//!     inner: FcfsBackfill,
//!     breaker: Mutex<CircuitBreaker>,
//! }
//!
//! impl SchedulingPolicy for BreakerGated {
//!     fn name(&self) -> String {
//!         format!("breaker({})", self.inner.name())
//!     }
//!
//!     fn launcher_slots(&self) -> u32 {
//!         self.inner.launcher_slots()
//!     }
//!
//!     fn on_submit(&self, view: &ClusterView, job: JobId, now: SimTime) -> Vec<Action> {
//!         if !self.breaker.lock().unwrap().allows(now) {
//!             return Vec::new(); // open: hold the job in the queue
//!         }
//!         self.inner.on_submit(view, job, now)
//!     }
//!
//!     fn on_complete(&self, view: &ClusterView, now: SimTime) -> Vec<Action> {
//!         self.breaker.lock().unwrap().record_success(now);
//!         self.inner.on_complete(view, now)
//!     }
//!
//!     fn on_fault(&self, view: &ClusterView, fault: &FaultEvent, now: SimTime) -> Vec<Action> {
//!         self.breaker.lock().unwrap().record_failure(now);
//!         self.inner.on_fault(view, fault, now)
//!     }
//! }
//!
//! let policy = BreakerGated {
//!     inner: FcfsBackfill::new(),
//!     breaker: Mutex::new(CircuitBreaker::new(2, Duration::from_secs(120.0))),
//! };
//!
//! // Two faults trip the breaker...
//! let t1 = SimTime::from_secs(10.0);
//! policy.breaker.lock().unwrap().record_failure(t1);
//! policy.breaker.lock().unwrap().record_failure(t1);
//! assert_eq!(policy.breaker.lock().unwrap().state(t1), BreakerState::Open);
//!
//! // ...so a submission at t=11 is held in the queue (no actions)...
//! let mut view = ClusterView::new(8);
//! let id = JobId(0);
//! view.insert(elastic_core::JobState {
//!     id,
//!     min_replicas: 1,
//!     max_replicas: 4,
//!     priority: 1,
//!     submitted_at: SimTime::from_secs(11.0),
//!     replicas: 0,
//!     last_action: SimTime::NEG_INFINITY,
//!     running: false,
//!     walltime_estimate: None,
//! }, 1);
//! assert!(policy.on_submit(&view, id, SimTime::from_secs(11.0)).is_empty());
//!
//! // ...but after the cooldown the half-open probe admits it again.
//! let later = SimTime::from_secs(140.0);
//! assert!(!policy.on_submit(&view, id, later).is_empty());
//! ```

#![warn(missing_docs)]

mod breaker;
mod budget;
mod health;
mod lifecycle;
mod state;

pub use breaker::{BreakerState, CircuitBreaker};
pub use budget::RetryBudget;
pub use health::HealthChecker;
pub use lifecycle::{LeasePool, Lifecycle, ShutdownPhase, SlotLease};
pub use state::{FlakyOutcome, ResilienceState};
