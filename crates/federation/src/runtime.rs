//! The federation runtime: N sharded clusters, M worker threads, one
//! work queue.
//!
//! The runtime/handle split follows the async-runtime idiom: the
//! non-cloneable [`FederationRuntime`] *owns* the worker OS threads and
//! the shard cells, while the cheap, cloneable [`FederationHandle`] is
//! the submission surface — hand copies to whoever produces work, keep
//! the runtime where the threads must eventually be joined.
//!
//! Each shard is a complete single-cluster simulation (its own
//! `SimConfig`, its own policy instance, its own event queue), stepped
//! a *quantum* of events at a time by whichever worker pops it off the
//! [work queue](crate::scheduler). Determinism holds by construction:
//! shards share no mutable state, a shard is only ever held by one
//! worker (the `Idle → Pending → Running` CAS), and `SimState::step`
//! is bit-identical to a monolithic drain regardless of how the event
//! stream is sliced into quanta — so worker count and pop interleaving
//! cannot change any shard's outcome.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use elastic_core::RunMetrics;
use elastic_resilience::{Lifecycle, ShutdownPhase};
use hpc_metrics::{SimTime, UtilizationRecorder};
use hpc_workload::{JobSpec, WorkloadSpec};
use sched_sim::{SimConfig, SimOutcome, SimState};

use crate::placement::{LoadTracker, PlacementPolicy};
use crate::resilience::ShardBreakerBoard;
use crate::scheduler::{ShardState, WorkQueue};

/// Shape of a federation: how many shards, how many workers drive
/// them, and how many events one worker drains per shard turn.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of shards (single-cluster simulations).
    pub shards: usize,
    /// Worker OS threads. More workers than shards is wasted; the
    /// constructor clamps to `min(available_parallelism, shards)`.
    pub workers: usize,
    /// Time quantum: events drained per shard turn before the worker
    /// yields the shard back to the queue tail. This is the fairness
    /// knob — a hot shard gets at most `quantum` events ahead of a
    /// cold one per round.
    pub quantum: usize,
}

impl FederationConfig {
    /// Default quantum: large enough to amortize a queue round-trip,
    /// small enough that an interactive shard waits at most a few
    /// thousand events behind a hot one.
    pub const DEFAULT_QUANTUM: usize = 512;

    /// A federation of `shards` clusters with as many workers as the
    /// host offers (capped at one per shard) and the default quantum.
    pub fn new(shards: usize) -> FederationConfig {
        assert!(shards > 0, "a federation needs at least one shard");
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        FederationConfig {
            shards,
            workers: host.min(shards),
            quantum: Self::DEFAULT_QUANTUM,
        }
    }

    /// Builder: pins the worker count (still capped at one per shard).
    pub fn with_workers(mut self, workers: usize) -> FederationConfig {
        assert!(workers > 0, "at least one worker");
        self.workers = workers.min(self.shards);
        self
    }

    /// Builder: sets the per-turn event quantum.
    pub fn with_quantum(mut self, quantum: usize) -> FederationConfig {
        assert!(quantum > 0, "a zero quantum would never make progress");
        self.quantum = quantum;
        self
    }
}

/// One shard's simulation: its config (policy instance included), its
/// slice of the workload, and — once submission happened — its live
/// DES state. A cell is only ever touched by the worker currently
/// Running its shard, so the mutex is uncontended in steady state.
struct ShardCell {
    cfg: SimConfig,
    workload: WorkloadSpec,
    state: Option<SimState>,
}

/// State shared between the runtime, its handles and its workers.
struct Core {
    wq: WorkQueue,
    cells: Vec<Mutex<Option<ShardCell>>>,
    capacities: Vec<u32>,
    quantum: usize,
    /// Shards still holding events; guarded so `join` can sleep on it.
    remaining: Mutex<usize>,
    all_drained: Condvar,
    /// Shard indices in the order they ran dry (fairness diagnostics).
    drain_order: Mutex<Vec<usize>>,
    /// Work-queue turns each shard was granted.
    turns: Vec<AtomicU64>,
    /// Latch per shard so the drain is counted exactly once.
    drained: Vec<AtomicBool>,
    loaded: AtomicBool,
    started: AtomicBool,
    /// Drain → cleanup → terminate phase tracker, observable from any
    /// handle while `join` tears the runtime down.
    lifecycle: Mutex<Lifecycle>,
}

/// Cheap, cloneable submission surface of a federation. All clones
/// point at the same runtime; a federation accepts exactly one
/// submission (a `WorkloadSpec` *is* the whole trace).
#[derive(Clone)]
pub struct FederationHandle {
    core: Arc<Core>,
}

impl FederationHandle {
    /// Routes every job of `workload` to a shard via `placement`,
    /// partitions the trace and seeds each non-empty shard's event
    /// queue. Returns the per-job shard assignment (workload order).
    ///
    /// The placement pre-pass is single-threaded and deterministic —
    /// the partition is fixed before any worker thread observes it, so
    /// replay results cannot depend on worker count.
    ///
    /// # Panics
    /// If called after [`FederationRuntime::start`], called twice, or
    /// if `placement` routes a job out of range.
    pub fn submit(
        &self,
        workload: &WorkloadSpec,
        placement: &mut dyn PlacementPolicy,
    ) -> Vec<usize> {
        self.route(workload, placement, None)
    }

    /// [`FederationHandle::submit`] with breaker-aware routing: each
    /// shard's [`ShardBreakerBoard`] breaker is fed that shard's flaky
    /// schedule along the arrival cursor, and while a breaker is open
    /// the shard advertises worst-case load, so load-sensitive policies
    /// ([`LeastLoaded`](crate::LeastLoaded) foremost) stop routing
    /// submits there until the cooldown half-opens it. If every breaker
    /// is open, routing falls back to the true loads. The board's
    /// per-shard flaky specs also replace the partitioned shard
    /// workloads' schedules, so each shard simulates the same faults
    /// its breaker saw.
    ///
    /// # Panics
    /// As [`FederationHandle::submit`], or if the board's shard count
    /// differs from the federation's.
    pub fn submit_resilient(
        &self,
        workload: &WorkloadSpec,
        placement: &mut dyn PlacementPolicy,
        board: &mut ShardBreakerBoard,
    ) -> Vec<usize> {
        assert_eq!(
            board.shards(),
            self.core.capacities.len(),
            "breaker board shard count must match the federation"
        );
        self.route(workload, placement, Some(board))
    }

    fn route(
        &self,
        workload: &WorkloadSpec,
        placement: &mut dyn PlacementPolicy,
        mut board: Option<&mut ShardBreakerBoard>,
    ) -> Vec<usize> {
        assert!(
            !self.core.started.load(Ordering::Acquire),
            "submit after start: the workload must be routed before workers run"
        );
        assert!(
            !self.core.loaded.swap(true, Ordering::AcqRel),
            "a federation accepts exactly one submission"
        );
        let shards = self.core.capacities.len();
        let mut tracker = LoadTracker::new(&self.core.capacities);
        let mut assignment = Vec::with_capacity(workload.jobs.len());
        for job in &workload.jobs {
            let now_s = job.arrival.as_secs();
            tracker.advance_to(now_s);
            let shard = match board.as_deref_mut() {
                Some(b) => {
                    let now = SimTime::ZERO + job.arrival;
                    b.advance_to(now);
                    let masked = b.masked_loads(tracker.loads(), now);
                    let shard = placement.place(job, &masked);
                    if shard < shards {
                        b.on_commit(shard, now);
                    }
                    shard
                }
                None => placement.place(job, tracker.loads()),
            };
            assert!(
                shard < shards,
                "placement routed job {} to shard {shard} of a {shards}-shard federation",
                job.name
            );
            tracker.commit(shard, job, now_s);
            assignment.push(shard);
        }
        for (shard, mut part) in workload
            .partition(&assignment, shards)
            .into_iter()
            .enumerate()
        {
            if let Some(b) = board.as_deref() {
                part.faults.flaky = b.spec(shard).clone();
            }
            let mut guard = self.core.cells[shard].lock().unwrap();
            let cell = guard.as_mut().expect("cells live until join");
            if !part.jobs.is_empty() {
                cell.state = Some(SimState::new(&cell.cfg, &part));
            }
            cell.workload = part;
        }
        assignment
    }

    /// Opens the federation's one submission as a *streaming* session:
    /// the batched counterpart of [`FederationHandle::submit`] for
    /// producers (the `elastic-serving` ingest queue foremost) that
    /// surface arrivals in flushed batches rather than as one complete
    /// trace. Push arrival-ordered chunks with
    /// [`BatchedSubmission::push`]; [`BatchedSubmission::finish`]
    /// partitions and seeds the shards exactly like the one-shot path.
    ///
    /// Routing state (the [`PlacementPolicy`] and the load tracker)
    /// persists *across* pushes, so any chunking of a job sequence
    /// produces the same assignment as one-shot submission of the whole
    /// sequence — the `batched_submission_matches_one_shot` test pins
    /// the equivalence. The session claims the federation's single
    /// submission at creation: a second `submit`/`batched_submit`
    /// panics even before `finish`.
    ///
    /// The batched path carries jobs only (no fault layer); submit a
    /// full [`WorkloadSpec`] one-shot when the trace schedules faults.
    ///
    /// # Panics
    /// If called after [`FederationRuntime::start`] or after any other
    /// submission.
    pub fn batched_submit<'a>(
        &self,
        placement: &'a mut dyn PlacementPolicy,
    ) -> BatchedSubmission<'a> {
        assert!(
            !self.core.started.load(Ordering::Acquire),
            "submit after start: the workload must be routed before workers run"
        );
        assert!(
            !self.core.loaded.swap(true, Ordering::AcqRel),
            "a federation accepts exactly one submission"
        );
        BatchedSubmission {
            core: Arc::clone(&self.core),
            placement,
            tracker: LoadTracker::new(&self.core.capacities),
            jobs: Vec::new(),
            assignment: Vec::new(),
        }
    }

    /// Current scheduler state of `shard`.
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.core.wq.state(shard)
    }

    /// Shards whose event queues have not drained yet.
    pub fn shards_remaining(&self) -> usize {
        *self.core.remaining.lock().unwrap()
    }

    /// The runtime's shutdown phase. Handles outlive `join`, so a clone
    /// kept aside still observes the final `Terminated`.
    pub fn shutdown_phase(&self) -> ShutdownPhase {
        self.core.lifecycle.lock().unwrap().phase()
    }
}

/// An open streaming submission (see
/// [`FederationHandle::batched_submit`]): accumulates arrival-ordered
/// job chunks, routing each job the moment it is pushed, and seeds the
/// shards on [`finish`](BatchedSubmission::finish).
pub struct BatchedSubmission<'a> {
    core: Arc<Core>,
    placement: &'a mut dyn PlacementPolicy,
    tracker: LoadTracker,
    jobs: Vec<JobSpec>,
    assignment: Vec<usize>,
}

impl BatchedSubmission<'_> {
    /// Routes one arrival-ordered chunk of jobs. Chunk boundaries are
    /// invisible to placement: the load tracker advances along the
    /// arrival cursor exactly as the one-shot pass does.
    ///
    /// # Panics
    /// If a job arrives earlier than the previously pushed one, or if
    /// the placement policy routes out of range.
    pub fn push(&mut self, jobs: &[JobSpec]) {
        let shards = self.core.capacities.len();
        for job in jobs {
            if let Some(last) = self.jobs.last() {
                assert!(
                    job.arrival >= last.arrival,
                    "batched pushes must preserve arrival order (job {} at {} after {})",
                    job.name,
                    job.arrival,
                    last.arrival
                );
            }
            let now_s = job.arrival.as_secs();
            self.tracker.advance_to(now_s);
            let shard = self.placement.place(job, self.tracker.loads());
            assert!(
                shard < shards,
                "placement routed job {} to shard {shard} of a {shards}-shard federation",
                job.name
            );
            self.tracker.commit(shard, job, now_s);
            self.assignment.push(shard);
            self.jobs.push(job.clone());
        }
    }

    /// Jobs routed so far.
    pub fn routed(&self) -> usize {
        self.jobs.len()
    }

    /// Partitions the accumulated trace and seeds each non-empty
    /// shard's event queue, exactly like the tail of the one-shot
    /// submit. Returns the per-job shard assignment (push order).
    ///
    /// # Panics
    /// If the runtime started while the session was open.
    pub fn finish(self) -> Vec<usize> {
        assert!(
            !self.core.started.load(Ordering::Acquire),
            "finish after start: shards were scheduled before they were seeded"
        );
        let shards = self.core.capacities.len();
        let workload = WorkloadSpec::new(self.jobs);
        for (shard, part) in workload
            .partition(&self.assignment, shards)
            .into_iter()
            .enumerate()
        {
            let mut guard = self.core.cells[shard].lock().unwrap();
            let cell = guard.as_mut().expect("cells live until join");
            if !part.jobs.is_empty() {
                cell.state = Some(SimState::new(&cell.cfg, &part));
            }
            cell.workload = part;
        }
        self.assignment
    }
}

/// Everything a finished federation replay produced.
pub struct FederationOutcome {
    /// Shard metrics merged into one federation-level [`RunMetrics`]
    /// (see `RunMetrics::merge` for the aggregation semantics). With a
    /// single shard this is bit-identical to that shard's metrics.
    pub merged: RunMetrics,
    /// Per-shard outcomes, indexed by shard. Shards the placement left
    /// empty carry empty metrics and an untouched recorder.
    pub shards: Vec<SimOutcome>,
    /// Per-shard cluster capacities (slots), indexed by shard.
    pub capacities: Vec<u32>,
    /// Events each shard processed.
    pub events: Vec<u64>,
    /// Work-queue turns each shard was granted.
    pub turns: Vec<u64>,
    /// Shard indices in drain order — under a small quantum, light
    /// shards finish before heavy ones regardless of index order.
    pub drain_order: Vec<usize>,
}

impl FederationOutcome {
    /// Total events processed across all shards.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }
}

/// The federation runtime: owns the shard cells and the worker OS
/// threads. Not cloneable — dropping it (or calling
/// [`FederationRuntime::join`]) is what shuts the workers down.
pub struct FederationRuntime {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
    cfg: FederationConfig,
}

impl FederationRuntime {
    /// Builds a federation whose shard `i` runs the `SimConfig`
    /// returned by `make_sim(i)` — each shard gets its *own* policy
    /// instance; nothing is shared across shards.
    pub fn new(cfg: FederationConfig, make_sim: impl Fn(usize) -> SimConfig) -> FederationRuntime {
        let cells: Vec<Mutex<Option<ShardCell>>> = (0..cfg.shards)
            .map(|shard| {
                Mutex::new(Some(ShardCell {
                    cfg: make_sim(shard),
                    workload: WorkloadSpec::new(Vec::new()),
                    state: None,
                }))
            })
            .collect();
        let capacities: Vec<u32> = cells
            .iter()
            .map(|c| c.lock().unwrap().as_ref().expect("fresh cell").cfg.capacity)
            .collect();
        FederationRuntime {
            core: Arc::new(Core {
                wq: WorkQueue::new(cfg.shards),
                cells,
                capacities,
                quantum: cfg.quantum,
                remaining: Mutex::new(0),
                all_drained: Condvar::new(),
                drain_order: Mutex::new(Vec::with_capacity(cfg.shards)),
                turns: (0..cfg.shards).map(|_| AtomicU64::new(0)).collect(),
                drained: (0..cfg.shards).map(|_| AtomicBool::new(false)).collect(),
                loaded: AtomicBool::new(false),
                started: AtomicBool::new(false),
                lifecycle: Mutex::new(Lifecycle::new()),
            }),
            workers: Vec::new(),
            cfg,
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> FederationHandle {
        FederationHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// The configuration this runtime was built with (workers already
    /// clamped).
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// The runtime's shutdown phase (Running until `join` begins its
    /// drain; Terminated once `join` has reaped the workers).
    pub fn shutdown_phase(&self) -> ShutdownPhase {
        self.core.lifecycle.lock().unwrap().phase()
    }

    /// Spawns the worker threads and schedules every loaded shard (in
    /// index order, for a deterministic initial queue).
    ///
    /// # Panics
    /// If no workload was submitted, or if called twice.
    pub fn start(&mut self) {
        assert!(
            self.core.loaded.load(Ordering::Acquire),
            "start before submit: nothing to replay"
        );
        assert!(
            !self.core.started.swap(true, Ordering::AcqRel),
            "a federation starts exactly once"
        );
        let mut loaded_shards = Vec::new();
        for (shard, cell) in self.core.cells.iter().enumerate() {
            let has_events = cell
                .lock()
                .unwrap()
                .as_ref()
                .expect("cells live until join")
                .state
                .is_some();
            if has_events {
                loaded_shards.push(shard);
            } else {
                // Placement left this shard empty: born drained.
                self.core.drained[shard].store(true, Ordering::Release);
            }
        }
        *self.core.remaining.lock().unwrap() = loaded_shards.len();
        if loaded_shards.is_empty() {
            self.core.all_drained.notify_all();
        }
        for shard in loaded_shards {
            self.core.wq.schedule(shard);
        }
        for w in 0..self.cfg.workers {
            let core = Arc::clone(&self.core);
            let handle = std::thread::Builder::new()
                .name(format!("fed-worker-{w}"))
                .spawn(move || worker_loop(&core))
                .expect("spawn federation worker");
            self.workers.push(handle);
        }
    }

    /// Blocks until every shard drains, stops the workers and merges
    /// the shard outcomes — the phased shutdown of the federation:
    /// **drain** (wait for every shard's event queue to run dry),
    /// **cleanup** (shut the work queue down and reap the worker
    /// threads), **terminate** (collect and merge the shard outcomes).
    /// [`FederationRuntime::shutdown_phase`] — and any
    /// [`FederationHandle::shutdown_phase`] clone — observes the
    /// transitions.
    ///
    /// # Panics
    /// If called before [`FederationRuntime::start`], or if a worker
    /// thread panicked (the panic is propagated).
    pub fn join(mut self) -> FederationOutcome {
        assert!(
            self.core.started.load(Ordering::Acquire),
            "join before start"
        );
        self.drain_shards();
        self.cleanup_workers();
        self.core.lifecycle.lock().unwrap().terminate();
        self.collect()
    }

    /// Drain phase: no further submissions (enforced since `start`),
    /// block until every loaded shard's event queue runs dry.
    fn drain_shards(&self) {
        self.core.lifecycle.lock().unwrap().begin_drain();
        let mut remaining = self.core.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.core.all_drained.wait(remaining).unwrap();
        }
    }

    /// Cleanup phase: stop the work queue and reap every worker thread,
    /// propagating the first worker panic.
    fn cleanup_workers(&mut self) {
        self.core.lifecycle.lock().unwrap().begin_cleanup();
        self.core.wq.shutdown();
        for w in std::mem::take(&mut self.workers) {
            if let Err(panic) = w.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }

    /// Post-terminate: consume the cells and merge the outcomes.
    fn collect(self) -> FederationOutcome {
        let mut shards = Vec::with_capacity(self.core.cells.len());
        let mut events = Vec::with_capacity(self.core.cells.len());
        for cell in &self.core.cells {
            let cell = cell
                .lock()
                .unwrap()
                .take()
                .expect("join consumes each cell once");
            match cell.state {
                Some(state) => {
                    events.push(state.events_processed());
                    shards.push(state.finish(&cell.cfg, &cell.workload));
                }
                None => {
                    // Never loaded: an empty single-cluster outcome.
                    events.push(0);
                    shards.push(SimOutcome {
                        metrics: RunMetrics::empty(cell.cfg.policy.name(), 0),
                        util: UtilizationRecorder::new(cell.cfg.capacity),
                        rescales: 0,
                        cancelled: 0,
                        names: Vec::new(),
                        peak_queue_len: 0,
                        peak_queue_len_raw: 0,
                    });
                }
            }
        }
        let merged = RunMetrics::merge(
            &self
                .core
                .capacities
                .iter()
                .zip(&shards)
                .map(|(&cap, outcome)| (cap, &outcome.metrics))
                .collect::<Vec<_>>(),
        );
        FederationOutcome {
            merged,
            shards,
            capacities: self.core.capacities.clone(),
            events,
            turns: self
                .core
                .turns
                .iter()
                .map(|t| t.load(Ordering::Acquire))
                .collect(),
            drain_order: self.core.drain_order.lock().unwrap().clone(),
        }
    }
}

impl Drop for FederationRuntime {
    fn drop(&mut self) {
        // join() took the workers; an early drop (panic unwind, test
        // teardown) still stops and reaps them.
        if !self.workers.is_empty() {
            self.core.wq.shutdown();
            for w in std::mem::take(&mut self.workers) {
                let _ = w.join();
            }
        }
    }
}

/// One worker: pop a shard, drain one quantum, report a drain exactly
/// once, yield the shard back. Exits when the queue shuts down.
fn worker_loop(core: &Core) {
    while let Some(shard) = core.wq.next() {
        core.turns[shard].fetch_add(1, Ordering::Relaxed);
        let more = {
            let mut guard = core.cells[shard].lock().unwrap();
            let cell = guard.as_mut().expect("cells live until join");
            let state = cell.state.as_mut().expect("scheduled shards are loaded");
            state.step(&cell.cfg, &cell.workload, core.quantum)
        };
        if !more && !core.drained[shard].swap(true, Ordering::AcqRel) {
            let mut remaining = core.remaining.lock().unwrap();
            *remaining -= 1;
            core.drain_order.lock().unwrap().push(shard);
            if *remaining == 0 {
                core.all_drained.notify_all();
            }
        }
        core.wq.yield_back(shard, more);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::RoundRobin;
    use elastic_core::{Policy, PolicyConfig};
    use hpc_metrics::Duration;
    use hpc_workload::JobSpec;
    use sched_sim::{OverheadModel, ScalingModel};

    fn sim_cfg(capacity: u32) -> SimConfig {
        SimConfig {
            capacity,
            policy: Box::new(Policy::rigid_max(PolicyConfig::default())),
            scaling: ScalingModel::default(),
            overhead: OverheadModel::default(),
            cancellations: Vec::new(),
        }
    }

    fn burst(n: usize, work: f64) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::malleable(format!("j{i:03}"), 1, 2, work, 1)
                    .at(Duration::from_secs(i as f64))
            })
            .collect()
    }

    #[test]
    fn single_submission_is_enforced() {
        let rt = FederationRuntime::new(FederationConfig::new(2).with_workers(1), |_| sim_cfg(8));
        let handle = rt.handle();
        let wl = WorkloadSpec::new(burst(4, 10.0));
        handle.submit(&wl, &mut RoundRobin::new());
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle.submit(&wl, &mut RoundRobin::new())
        }));
        assert!(second.is_err(), "second submission must panic");
    }

    #[test]
    fn empty_shards_are_born_drained() {
        // 3 shards, all jobs forced onto shard 0.
        struct Pin;
        impl PlacementPolicy for Pin {
            fn name(&self) -> String {
                "pin".into()
            }
            fn place(&mut self, _: &JobSpec, _: &[crate::placement::ShardLoad]) -> usize {
                0
            }
        }
        let mut rt =
            FederationRuntime::new(FederationConfig::new(3).with_workers(2), |_| sim_cfg(8));
        rt.handle()
            .submit(&WorkloadSpec::new(burst(6, 5.0)), &mut Pin);
        rt.start();
        let out = rt.join();
        assert_eq!(out.events[1], 0);
        assert_eq!(out.events[2], 0);
        assert!(out.events[0] > 0);
        assert_eq!(out.shards[1].metrics.jobs.len(), 0);
        assert_eq!(out.merged.jobs.len(), 6);
        assert_eq!(out.turns[1], 0, "unloaded shards never get a turn");
    }

    #[test]
    fn small_quantum_lets_light_shards_drain_first() {
        // One worker so turn order is the queue order; a tiny quantum
        // forces round-robin between the heavy shard 0 and light shard 1.
        struct ByIndex(usize);
        impl PlacementPolicy for ByIndex {
            fn name(&self) -> String {
                "by_index".into()
            }
            fn place(&mut self, _: &JobSpec, _: &[crate::placement::ShardLoad]) -> usize {
                let s = if self.0 < 40 { 0 } else { 1 };
                self.0 += 1;
                s
            }
        }
        // Heavy shard: 40 jobs; light shard: 2 jobs.
        let jobs = burst(42, 5.0);
        let wl = WorkloadSpec::new(jobs);

        let run = |quantum: usize| {
            let mut rt = FederationRuntime::new(
                FederationConfig::new(2)
                    .with_workers(1)
                    .with_quantum(quantum),
                |_| sim_cfg(8),
            );
            rt.handle().submit(&wl, &mut ByIndex(0));
            rt.start();
            rt.join()
        };

        let fair = run(2);
        assert_eq!(
            fair.drain_order,
            vec![1, 0],
            "under a small quantum the light shard finishes first"
        );
        assert!(fair.turns[0] > fair.turns[1]);

        let hog = run(usize::MAX);
        assert_eq!(
            hog.drain_order,
            vec![0, 1],
            "an unbounded quantum drains shards in schedule order"
        );
        assert_eq!(hog.turns[0], 1, "one turn drains everything");

        // Fairness is a latency property; outcomes stay identical.
        assert_eq!(fair.merged, hog.merged);
    }

    #[test]
    fn one_shard_quantum_replay_is_bit_identical_to_single_cluster() {
        // The one-shard federation must be indistinguishable from a
        // monolithic single-cluster drain even when the work-queue
        // scheduler slices the replay into tiny `step(max_events)`
        // quanta — and the arrival span here is wide enough that those
        // quantum boundaries repeatedly land across the calendar
        // queue's bucket-epoch rebuilds (the far list re-bucketizes
        // several times as the run advances).
        let wl = WorkloadSpec::new(burst(120, 15.0));
        let mono = sched_sim::simulate(&sim_cfg(8), &wl);
        for quantum in [3usize, 17, 1000] {
            let mut rt = FederationRuntime::new(
                FederationConfig::new(1)
                    .with_workers(1)
                    .with_quantum(quantum),
                |_| sim_cfg(8),
            );
            rt.handle().submit(&wl, &mut RoundRobin::new());
            rt.start();
            let out = rt.join();
            assert_eq!(out.shards.len(), 1);
            assert_eq!(
                out.shards[0].metrics, mono.metrics,
                "quantum {quantum} diverged from the monolithic replay"
            );
            assert_eq!(out.merged, mono.metrics);
            assert_eq!(out.shards[0].rescales, mono.rescales);
            assert_eq!(out.shards[0].peak_queue_len, mono.peak_queue_len);
            assert_eq!(out.shards[0].peak_queue_len_raw, mono.peak_queue_len_raw);
        }
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let wl = WorkloadSpec::new(burst(60, 12.0));
        let run = |workers: usize| {
            let mut rt = FederationRuntime::new(
                FederationConfig::new(4)
                    .with_workers(workers)
                    .with_quantum(8),
                |_| sim_cfg(8),
            );
            rt.handle().submit(&wl, &mut RoundRobin::new());
            rt.start();
            rt.join()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.merged, four.merged);
        assert_eq!(one.events, four.events);
        for (a, b) in one.shards.iter().zip(&four.shards) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn least_loaded_skips_open_breaker_shards() {
        use crate::placement::LeastLoaded;
        use hpc_workload::{FlakyEvent, FlakyOp, FlakySpec};

        // Shard 1's schedule trips its breaker at t = 0 (threshold 1);
        // the cooldown half-opens it at t = 300.
        let flaky = FlakySpec::new(vec![FlakyEvent {
            at: Duration::from_secs(0.0),
            op: FlakyOp::LaunchFail,
        }])
        .with_breaker(1, Duration::from_secs(300.0));
        let mut board =
            ShardBreakerBoard::new(2, &FlakySpec::new(Vec::new())).with_shard_spec(1, flaky);

        // Long-estimated jobs so shard 0's committed load keeps
        // growing — an unmasked LeastLoaded would alternate shards.
        let jobs: Vec<JobSpec> = (0..8)
            .map(|i| {
                JobSpec::malleable(format!("j{i:02}"), 1, 2, 20.0, 1)
                    .at(Duration::from_secs(i as f64 * 50.0))
                    .with_walltime_estimate(Duration::from_secs(10_000.0))
            })
            .collect();
        let wl = WorkloadSpec::new(jobs);

        let rt = FederationRuntime::new(FederationConfig::new(2).with_workers(1), |_| sim_cfg(8));
        let assignment = rt
            .handle()
            .submit_resilient(&wl, &mut LeastLoaded::new(), &mut board);

        // Arrivals before the t = 300 half-open all avoid shard 1, even
        // though shard 0 grows ever more loaded; the first arrival at
        // or past 300 is the probe that lands on (and closes) shard 1.
        for (i, &shard) in assignment.iter().enumerate() {
            let at = i as f64 * 50.0;
            if at < 300.0 {
                assert_eq!(shard, 0, "open breaker must mask shard 1 at t={at}");
            }
        }
        assert_eq!(
            assignment[6], 1,
            "half-open probe at t=300 routes to the now-least-loaded shard 1"
        );
        assert!(
            assignment[7] == 1,
            "probe success closed the breaker; shard 1 is least loaded"
        );
        assert_eq!(board.trips(1), 1);
    }

    #[test]
    fn all_open_breakers_still_route_somewhere() {
        use crate::placement::LeastLoaded;
        use hpc_workload::{FlakyEvent, FlakyOp, FlakySpec};

        let flaky = FlakySpec::new(vec![FlakyEvent {
            at: Duration::from_secs(0.0),
            op: FlakyOp::LaunchFail,
        }])
        .with_breaker(1, Duration::from_secs(1e6));
        let mut board = ShardBreakerBoard::new(2, &flaky);
        let wl = WorkloadSpec::new(burst(4, 10.0));
        let mut rt =
            FederationRuntime::new(FederationConfig::new(2).with_workers(1), |_| sim_cfg(8));
        let assignment = rt
            .handle()
            .submit_resilient(&wl, &mut LeastLoaded::new(), &mut board);
        assert_eq!(assignment.len(), 4, "every job still routed");
        rt.start();
        assert_eq!(rt.join().merged.jobs.len(), 4);
    }

    #[test]
    fn board_specs_override_partitioned_flaky_schedules() {
        use crate::placement::RoundRobin;
        use hpc_workload::FlakySpec;

        // The workload itself carries no flaky schedule; the board
        // does (threshold high enough never to trip during routing).
        let storm = FlakySpec::storm(7, 6, Duration::from_secs(400.0))
            .with_breaker(u32::MAX, Duration::from_secs(120.0));
        let mut board = ShardBreakerBoard::new(1, &storm);
        let wl = WorkloadSpec::new(burst(12, 40.0));
        assert!(wl.faults.flaky.is_empty());

        let mut rt =
            FederationRuntime::new(FederationConfig::new(1).with_workers(1), |_| sim_cfg(4));
        rt.handle()
            .submit_resilient(&wl, &mut RoundRobin::new(), &mut board);
        rt.start();
        let out = rt.join();
        assert!(
            out.merged.faults.transient_faults > 0,
            "the shard replayed the board's flaky schedule"
        );
    }

    #[test]
    fn join_runs_the_phased_shutdown() {
        let mut rt =
            FederationRuntime::new(FederationConfig::new(2).with_workers(2), |_| sim_cfg(8));
        let handle = rt.handle();
        assert_eq!(handle.shutdown_phase(), ShutdownPhase::Running);
        handle.submit(&WorkloadSpec::new(burst(8, 5.0)), &mut RoundRobin::new());
        rt.start();
        assert_eq!(rt.shutdown_phase(), ShutdownPhase::Running);
        let out = rt.join();
        assert_eq!(out.merged.jobs.len(), 8);
        assert_eq!(
            handle.shutdown_phase(),
            ShutdownPhase::Terminated,
            "a surviving handle observes the terminal phase"
        );
    }

    #[test]
    fn batched_submission_matches_one_shot() {
        use crate::placement::LeastLoaded;

        // Load-sensitive placement with expiring committed work: any
        // divergence in how the batched path advances the tracker
        // across chunk boundaries would change the assignment.
        let jobs: Vec<JobSpec> = (0..30)
            .map(|i| {
                JobSpec::malleable(format!("j{i:02}"), 1, 2, 15.0 + (i % 5) as f64 * 10.0, 1)
                    .at(Duration::from_secs(i as f64 * 7.0))
                    .with_walltime_estimate(Duration::from_secs(60.0 + (i % 3) as f64 * 120.0))
            })
            .collect();
        let wl = WorkloadSpec::new(jobs.clone());

        let mut one_shot =
            FederationRuntime::new(FederationConfig::new(3).with_workers(2), |_| sim_cfg(8));
        let direct = one_shot.handle().submit(&wl, &mut LeastLoaded::new());
        one_shot.start();
        let direct_out = one_shot.join();

        let mut batched =
            FederationRuntime::new(FederationConfig::new(3).with_workers(2), |_| sim_cfg(8));
        let mut placement = LeastLoaded::new();
        let mut session = batched.handle().batched_submit(&mut placement);
        for chunk in jobs.chunks(7) {
            session.push(chunk);
        }
        assert_eq!(session.routed(), 30);
        let chunked = session.finish();
        batched.start();
        let batched_out = batched.join();

        assert_eq!(chunked, direct, "chunking must not change placement");
        assert_eq!(batched_out.merged, direct_out.merged);
        for (a, b) in batched_out.shards.iter().zip(&direct_out.shards) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn batched_submission_claims_the_single_submission() {
        let rt = FederationRuntime::new(FederationConfig::new(2).with_workers(1), |_| sim_cfg(8));
        let handle = rt.handle();
        let mut placement = RoundRobin::new();
        let mut session = handle.batched_submit(&mut placement);
        session.push(&burst(4, 10.0));
        // The open session already owns the federation's one
        // submission: a one-shot submit must panic even before finish.
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle.submit(&WorkloadSpec::new(burst(2, 5.0)), &mut RoundRobin::new())
        }));
        assert!(second.is_err(), "concurrent one-shot submit must panic");
        assert_eq!(session.finish(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn drop_without_join_reaps_workers() {
        let mut rt =
            FederationRuntime::new(FederationConfig::new(2).with_workers(2), |_| sim_cfg(8));
        rt.handle()
            .submit(&WorkloadSpec::new(burst(8, 5.0)), &mut RoundRobin::new());
        rt.start();
        drop(rt); // must not hang or leak threads
    }
}
