//! Cross-shard placement policies.
//!
//! When a workload is submitted to a federation, each job is routed to
//! exactly one shard (cluster) by a [`PlacementPolicy`] — the
//! federation-level analogue of `elastic_core::SchedulingPolicy`, one
//! layer up: the scheduling policy decides *which slots inside a
//! cluster*, the placement policy decides *which cluster at all*.
//!
//! Placement happens at submit time, walking jobs in arrival order
//! against a deterministic [`ShardLoad`] snapshot per shard (queue
//! depth and committed work estimated from walltime annotations — no
//! simulation state, no wall clock), so the produced assignment is a
//! pure function of the workload. That is what keeps a parallel replay
//! reproducible: the partition is fixed before any worker thread runs.

use hpc_workload::JobSpec;

/// A deterministic snapshot of one shard's estimated load at a
/// placement instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Worker slots this shard's cluster owns.
    pub capacity: u32,
    /// Jobs routed here whose estimated completion lies in the future.
    pub queue_depth: usize,
    /// Outstanding committed work (core-seconds) of those jobs.
    pub committed_work: f64,
}

/// Routes each submitted job to a shard.
///
/// Implementations must be deterministic functions of the job and the
/// load snapshot (plus their own internal state fed only by prior
/// `place` calls) — never of wall-clock time — so that a replay
/// partitions identically regardless of worker count.
pub trait PlacementPolicy: Send {
    /// Human-readable policy label.
    fn name(&self) -> String;

    /// Chooses a shard index (`< loads.len()`) for `job`.
    fn place(&mut self, job: &JobSpec, loads: &[ShardLoad]) -> usize;
}

/// Round-robin placement: job *k* goes to shard `k mod n`.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh rotation starting at shard 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> String {
        "round_robin".into()
    }

    fn place(&mut self, _job: &JobSpec, loads: &[ShardLoad]) -> usize {
        let shard = self.next % loads.len();
        self.next = (self.next + 1) % loads.len();
        shard
    }
}

/// Least-loaded placement: the shard with the fewest estimated
/// in-flight jobs per slot wins; committed work per slot breaks ties,
/// then the lowest index (fully deterministic).
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// The greedy load balancer.
    pub fn new() -> LeastLoaded {
        LeastLoaded
    }
}

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> String {
        "least_loaded".into()
    }

    fn place(&mut self, _job: &JobSpec, loads: &[ShardLoad]) -> usize {
        loads
            .iter()
            .min_by(|a, b| {
                let depth_a = a.queue_depth as f64 / f64::from(a.capacity.max(1));
                let depth_b = b.queue_depth as f64 / f64::from(b.capacity.max(1));
                depth_a
                    .total_cmp(&depth_b)
                    .then_with(|| {
                        let work_a = a.committed_work / f64::from(a.capacity.max(1));
                        let work_b = b.committed_work / f64::from(b.capacity.max(1));
                        work_a.total_cmp(&work_b)
                    })
                    .then_with(|| a.shard.cmp(&b.shard))
            })
            .expect("at least one shard")
            .shard
    }
}

/// Affinity placement: jobs hash to a shard by their user/name label
/// (FNV-1a, stable across platforms and releases — `DefaultHasher`
/// makes no such promise), so one user's jobs land on one cluster.
/// SWF user ids ride in the job names our trace loader produces; any
/// stable label works.
#[derive(Debug, Default)]
pub struct HashByUser;

impl HashByUser {
    /// The affinity router.
    pub fn new() -> HashByUser {
        HashByUser
    }
}

/// Stable 64-bit FNV-1a.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PlacementPolicy for HashByUser {
    fn name(&self) -> String {
        "hash_by_user".into()
    }

    fn place(&mut self, job: &JobSpec, loads: &[ShardLoad]) -> usize {
        (fnv1a(job.name.as_bytes()) % loads.len() as u64) as usize
    }
}

/// An in-flight job: estimated completion instant plus committed work,
/// ordered by completion for the expiry heap.
#[derive(Debug, PartialEq)]
struct InFlight {
    finish_s: f64,
    work: f64,
}

impl Eq for InFlight {}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via Reverse at the call site; total_cmp keeps this a
        // total order even for degenerate float estimates.
        self.finish_s
            .total_cmp(&other.finish_s)
            .then_with(|| self.work.total_cmp(&other.work))
    }
}

/// Maintains the deterministic [`ShardLoad`] snapshots a submission
/// pass feeds to the placement policy: jobs expire off a per-shard
/// min-heap at their estimated completion instants as the arrival
/// cursor advances.
pub(crate) struct LoadTracker {
    loads: Vec<ShardLoad>,
    inflight: Vec<std::collections::BinaryHeap<std::cmp::Reverse<InFlight>>>,
}

impl LoadTracker {
    pub fn new(capacities: &[u32]) -> LoadTracker {
        LoadTracker {
            loads: capacities
                .iter()
                .enumerate()
                .map(|(shard, &capacity)| ShardLoad {
                    shard,
                    capacity,
                    queue_depth: 0,
                    committed_work: 0.0,
                })
                .collect(),
            inflight: capacities.iter().map(|_| Default::default()).collect(),
        }
    }

    /// Estimated wall seconds a job will occupy its shard: the user's
    /// walltime estimate when present, else work spread over the
    /// maximum replica count (a crude but deterministic proxy).
    fn estimated_runtime_s(job: &JobSpec) -> f64 {
        job.walltime_estimate
            .map(|d| d.as_secs())
            .unwrap_or_else(|| job.work() / f64::from(job.max_replicas().max(1)))
    }

    /// Expires every job whose estimated completion is at or before
    /// `now_s`.
    pub fn advance_to(&mut self, now_s: f64) {
        for (load, heap) in self.loads.iter_mut().zip(&mut self.inflight) {
            while let Some(std::cmp::Reverse(head)) = heap.peek() {
                if head.finish_s > now_s {
                    break;
                }
                load.committed_work -= head.work;
                heap.pop();
            }
            load.queue_depth = heap.len();
            if load.queue_depth == 0 {
                load.committed_work = 0.0; // cancel float drift on idle
            }
        }
    }

    /// Records that `job` (arriving at `now_s`) was routed to `shard`.
    pub fn commit(&mut self, shard: usize, job: &JobSpec, now_s: f64) {
        let work = job.work();
        self.inflight[shard].push(std::cmp::Reverse(InFlight {
            finish_s: now_s + Self::estimated_runtime_s(job),
            work,
        }));
        self.loads[shard].committed_work += work;
        self.loads[shard].queue_depth = self.inflight[shard].len();
    }

    pub fn loads(&self) -> &[ShardLoad] {
        &self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_metrics::Duration;

    fn job(name: &str, work: f64) -> JobSpec {
        JobSpec::malleable(name, 1, 4, work, 1)
    }

    #[test]
    fn round_robin_rotates() {
        let caps = [8, 8, 8];
        let tracker = LoadTracker::new(&caps);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..7)
            .map(|i| rr.place(&job(&format!("j{i}"), 10.0), tracker.loads()))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_tracks_expiring_work() {
        let mut tracker = LoadTracker::new(&[8, 8]);
        let mut ll = LeastLoaded::new();
        // First job: ties everywhere, lowest index wins.
        let a = job("a", 40.0).with_walltime_estimate(Duration::from_secs(10.0));
        assert_eq!(ll.place(&a, tracker.loads()), 0);
        tracker.commit(0, &a, 0.0);
        // Second job at t=0: shard 0 busy, shard 1 empty.
        let b = job("b", 40.0).with_walltime_estimate(Duration::from_secs(100.0));
        assert_eq!(ll.place(&b, tracker.loads()), 1);
        tracker.commit(1, &b, 0.0);
        // At t=50 job a (finish 10) expired, job b (finish 100) not.
        tracker.advance_to(50.0);
        assert_eq!(tracker.loads()[0].queue_depth, 0);
        assert_eq!(tracker.loads()[0].committed_work, 0.0);
        assert_eq!(tracker.loads()[1].queue_depth, 1);
        let c = job("c", 40.0);
        assert_eq!(ll.place(&c, tracker.loads()), 0);
    }

    #[test]
    fn least_loaded_normalizes_by_capacity() {
        // 2 queued on 32 slots is lighter than 1 queued on 8.
        let mut tracker = LoadTracker::new(&[8, 32]);
        for i in 0..2 {
            tracker.commit(1, &job(&format!("w{i}"), 10.0), 0.0);
        }
        tracker.commit(0, &job("x", 10.0), 0.0);
        let mut ll = LeastLoaded::new();
        assert_eq!(ll.place(&job("y", 10.0), tracker.loads()), 1);
    }

    #[test]
    fn hash_by_user_is_stable_and_spreads() {
        let tracker = LoadTracker::new(&[8; 8]);
        let mut h = HashByUser::new();
        let picks: Vec<usize> = (0..64)
            .map(|i| {
                h.place(
                    &job(&format!("user{}.job{i}", i % 7), 10.0),
                    tracker.loads(),
                )
            })
            .collect();
        let again: Vec<usize> = (0..64)
            .map(|i| {
                h.place(
                    &job(&format!("user{}.job{i}", i % 7), 10.0),
                    tracker.loads(),
                )
            })
            .collect();
        assert_eq!(picks, again, "pure function of the name");
        let mut used = picks.clone();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() > 2, "names spread over shards, got {used:?}");
        // FNV-1a reference vector ("a" = 0xaf63dc4c8601ec8c).
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
