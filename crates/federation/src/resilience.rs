//! Breaker-aware placement: per-shard circuit breakers fed by each
//! shard's transient-fault schedule.
//!
//! A federation front-end should stop routing work at a sick member
//! cluster long before that cluster's own retry machinery gives up.
//! The [`ShardBreakerBoard`] is that front-end view: one
//! [`CircuitBreaker`] per shard, fed deterministically from the shard's
//! [`FlakySpec`] schedule as the submission pass walks the arrival
//! cursor — every scheduled transient fault at or before the current
//! arrival instant counts as a failure against that shard's breaker.
//!
//! During routing the board *masks* the [`ShardLoad`] snapshot: a shard
//! whose breaker is open advertises worst-case load (`usize::MAX` queue
//! depth, infinite committed work), so any load-sensitive policy —
//! [`LeastLoaded`](crate::LeastLoaded) foremost — steers around it
//! without the policy knowing breakers exist. Once the cooldown
//! half-opens the breaker the shard advertises its true load again; the
//! first job committed to a half-open shard is the probe whose success
//! closes the breaker. If *every* breaker is open the board stops
//! masking entirely (routing somewhere beats routing nowhere), exactly
//! like a front-end with no healthy member left.
//!
//! Everything is driven by workload time ([`SimTime`] derived from
//! arrival offsets), never a wall clock, so a replay's routing is a
//! pure function of (workload, schedules) — the same determinism
//! contract as the rest of the federation layer.

use elastic_resilience::{BreakerState, CircuitBreaker};
use hpc_metrics::SimTime;
use hpc_workload::FlakySpec;

use crate::placement::ShardLoad;

/// Per-shard circuit breakers plus the flaky schedules that feed them.
///
/// Build one with [`ShardBreakerBoard::new`] (replicating one spec to
/// every shard) and override individual shards with
/// [`ShardBreakerBoard::with_shard_spec`], then pass it to
/// [`FederationHandle::submit_resilient`](crate::FederationHandle::submit_resilient).
/// The per-shard specs also override the partitioned workloads' flaky
/// schedules, so each shard's *simulation* replays the same faults its
/// *breaker* was fed.
#[derive(Debug, Clone)]
pub struct ShardBreakerBoard {
    breakers: Vec<CircuitBreaker>,
    schedules: Vec<FlakySpec>,
    cursors: Vec<usize>,
}

impl ShardBreakerBoard {
    /// A board of `shards` breakers, each parameterized and fed by (a
    /// copy of) `spec`. The breaker threshold and cooldown come from
    /// the spec's `breaker_threshold` / `breaker_cooldown`.
    pub fn new(shards: usize, spec: &FlakySpec) -> ShardBreakerBoard {
        assert!(shards > 0, "a board needs at least one shard");
        ShardBreakerBoard {
            breakers: (0..shards)
                .map(|_| CircuitBreaker::new(spec.breaker_threshold, spec.breaker_cooldown))
                .collect(),
            schedules: vec![spec.clone(); shards],
            cursors: vec![0; shards],
        }
    }

    /// Builder: gives `shard` its own flaky schedule (and breaker
    /// parameters), replacing the replicated one.
    ///
    /// # Panics
    /// If `shard` is out of range or routing already began.
    pub fn with_shard_spec(mut self, shard: usize, spec: FlakySpec) -> ShardBreakerBoard {
        assert!(
            self.cursors.iter().all(|&c| c == 0),
            "shard specs must be set before routing begins"
        );
        self.breakers[shard] = CircuitBreaker::new(spec.breaker_threshold, spec.breaker_cooldown);
        self.schedules[shard] = spec;
        self
    }

    /// Number of shards on the board.
    pub fn shards(&self) -> usize {
        self.breakers.len()
    }

    /// The flaky schedule feeding `shard`'s breaker.
    pub fn spec(&self, shard: usize) -> &FlakySpec {
        &self.schedules[shard]
    }

    /// `shard`'s breaker state as of `now`.
    pub fn state(&self, shard: usize, now: SimTime) -> BreakerState {
        self.breakers[shard].state(now)
    }

    /// Times `shard`'s breaker has tripped open so far.
    pub fn trips(&self, shard: usize) -> u32 {
        self.breakers[shard].trips()
    }

    /// Feeds every scheduled flaky event at or before `now` into its
    /// shard's breaker (each event is a failure at its own instant).
    pub fn advance_to(&mut self, now: SimTime) {
        for shard in 0..self.breakers.len() {
            while let Some(e) = self.schedules[shard].events.get(self.cursors[shard]) {
                let at = SimTime::ZERO + e.at;
                if at > now {
                    break;
                }
                self.breakers[shard].record_failure(at);
                self.cursors[shard] += 1;
            }
        }
    }

    /// The load snapshot the placement policy should see at `now`:
    /// open-breaker shards advertise worst-case load so load-sensitive
    /// policies steer around them. Falls back to the unmasked snapshot
    /// when every breaker is open — routing somewhere beats nowhere.
    pub fn masked_loads(&mut self, loads: &[ShardLoad], now: SimTime) -> Vec<ShardLoad> {
        assert_eq!(
            loads.len(),
            self.breakers.len(),
            "board/shard count mismatch"
        );
        let any_healthy = (0..self.breakers.len()).any(|s| self.breakers[s].allows(now));
        loads
            .iter()
            .map(|load| {
                let mut load = load.clone();
                if any_healthy && !self.breakers[load.shard].allows(now) {
                    load.queue_depth = usize::MAX;
                    load.committed_work = f64::INFINITY;
                }
                load
            })
            .collect()
    }

    /// Records that a job was committed to `shard` at `now`. For a
    /// half-open breaker this is the successful probe that closes it.
    pub fn on_commit(&mut self, shard: usize, now: SimTime) {
        if self.breakers[shard].state(now) == BreakerState::HalfOpen {
            self.breakers[shard].record_success(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_metrics::Duration;
    use hpc_workload::{FlakyEvent, FlakyOp};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn loads(n: usize) -> Vec<ShardLoad> {
        (0..n)
            .map(|shard| ShardLoad {
                shard,
                capacity: 8,
                queue_depth: shard, // shard 0 lightest
                committed_work: shard as f64,
            })
            .collect()
    }

    fn flaky_at(times: &[f64]) -> FlakySpec {
        FlakySpec::new(
            times
                .iter()
                .map(|&s| FlakyEvent {
                    at: Duration::from_secs(s),
                    op: FlakyOp::LaunchFail,
                })
                .collect(),
        )
        .with_breaker(1, Duration::from_secs(100.0))
    }

    #[test]
    fn schedule_trips_only_its_own_shard() {
        let mut board = ShardBreakerBoard::new(2, &FlakySpec::new(Vec::new()))
            .with_shard_spec(1, flaky_at(&[5.0]));
        board.advance_to(t(4.0));
        assert_eq!(board.state(1, t(4.0)), BreakerState::Closed);
        board.advance_to(t(5.0));
        assert_eq!(board.state(0, t(5.0)), BreakerState::Closed);
        assert_eq!(board.state(1, t(5.0)), BreakerState::Open);
        assert_eq!(board.trips(1), 1);
        // Cooldown over: half-open, and a committed probe closes it.
        assert_eq!(board.state(1, t(105.0)), BreakerState::HalfOpen);
        board.on_commit(1, t(105.0));
        assert_eq!(board.state(1, t(105.0)), BreakerState::Closed);
    }

    #[test]
    fn masking_hides_open_shards_until_half_open() {
        let mut board = ShardBreakerBoard::new(3, &FlakySpec::new(Vec::new()))
            .with_shard_spec(0, flaky_at(&[0.0]));
        board.advance_to(t(0.0));
        let masked = board.masked_loads(&loads(3), t(0.0));
        assert_eq!(masked[0].queue_depth, usize::MAX);
        assert!(masked[0].committed_work.is_infinite());
        assert_eq!(masked[1], loads(3)[1]);
        assert_eq!(masked[2], loads(3)[2]);
        // Half-open at t=100: true load is visible again.
        let probe = board.masked_loads(&loads(3), t(100.0));
        assert_eq!(probe[0], loads(3)[0]);
    }

    #[test]
    fn all_breakers_open_falls_back_to_unmasked_loads() {
        let mut board = ShardBreakerBoard::new(2, &flaky_at(&[0.0]));
        board.advance_to(t(0.0));
        assert_eq!(board.state(0, t(0.0)), BreakerState::Open);
        assert_eq!(board.state(1, t(0.0)), BreakerState::Open);
        let masked = board.masked_loads(&loads(2), t(0.0));
        assert_eq!(masked, loads(2), "no healthy shard: mask nothing");
    }
}
