//! The work-queue shard scheduler.
//!
//! A shard is always in exactly one of three states:
//!
//! ```text
//!            schedule()              next()
//!   Idle ───────────────▶ Pending ───────────▶ Running
//!    ▲                       ▲                    │
//!    │   yield_back(false)   │  yield_back(true)  │
//!    └───────────────────────┴────────────────────┘
//! ```
//!
//! `schedule` is a compare-and-swap on the shard's atomic state, so a
//! shard can never sit in the queue twice and two workers can never
//! run the same shard concurrently — the state machine, not a lock
//! around the whole scheduler, is the exclusion mechanism. A worker
//! that drains its *time quantum* without exhausting the shard yields
//! it straight back to `Pending` (re-queued at the tail), which is
//! what keeps a hot shard from starving the rest: every queued shard
//! gets a turn every round.
//!
//! Shutdown is graceful: workers keep popping until the queue is
//! empty, then observe the flag and exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};

/// Where a shard currently is in the work-queue lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardState {
    /// Not queued and not held by a worker.
    Idle = 0,
    /// In the work queue, waiting for a worker.
    Pending = 1,
    /// Held by a worker, draining up to one quantum of events.
    Running = 2,
}

impl ShardState {
    fn from_u8(v: u8) -> ShardState {
        match v {
            0 => ShardState::Idle,
            1 => ShardState::Pending,
            2 => ShardState::Running,
            _ => unreachable!("invalid shard state {v}"),
        }
    }
}

/// The FIFO shard queue with per-shard atomic states.
pub(crate) struct WorkQueue {
    queue: Mutex<VecDeque<usize>>,
    available: Condvar,
    states: Vec<AtomicU8>,
    shutdown: AtomicBool,
}

impl WorkQueue {
    pub fn new(shards: usize) -> WorkQueue {
        WorkQueue {
            queue: Mutex::new(VecDeque::with_capacity(shards)),
            available: Condvar::new(),
            states: (0..shards).map(|_| AtomicU8::new(0)).collect(),
            shutdown: AtomicBool::new(false),
        }
    }

    pub fn state(&self, shard: usize) -> ShardState {
        ShardState::from_u8(self.states[shard].load(Ordering::Acquire))
    }

    /// `Idle → Pending` and enqueue. Returns `false` when the shard was
    /// already Pending or Running (it will pass through the queue
    /// anyway; scheduling is idempotent).
    pub fn schedule(&self, shard: usize) -> bool {
        if self.states[shard]
            .compare_exchange(
                ShardState::Idle as u8,
                ShardState::Pending as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return false;
        }
        self.queue.lock().unwrap().push_back(shard);
        self.available.notify_one();
        true
    }

    /// Blocks until a Pending shard is available (transitioning it to
    /// Running) or until shutdown with an empty queue.
    pub fn next(&self) -> Option<usize> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(shard) = q.pop_front() {
                self.states[shard].store(ShardState::Running as u8, Ordering::Release);
                return Some(shard);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self.available.wait(q).unwrap();
        }
    }

    /// Returns a shard after one quantum: `Running → Pending` (with a
    /// tail re-queue) while events remain, `Running → Idle` otherwise.
    pub fn yield_back(&self, shard: usize, more: bool) {
        debug_assert_eq!(self.state(shard), ShardState::Running);
        if more {
            self.states[shard].store(ShardState::Pending as u8, Ordering::Release);
            self.queue.lock().unwrap().push_back(shard);
            self.available.notify_one();
        } else {
            self.states[shard].store(ShardState::Idle as u8, Ordering::Release);
        }
    }

    /// Lets workers drain the remaining queue and then exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Take the lock so a worker between its empty-check and its
        // wait cannot miss the wakeup.
        drop(self.queue.lock().unwrap());
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn schedule_is_a_cas_from_idle_only() {
        let wq = WorkQueue::new(2);
        assert_eq!(wq.state(0), ShardState::Idle);
        assert!(wq.schedule(0), "Idle -> Pending");
        assert_eq!(wq.state(0), ShardState::Pending);
        assert!(!wq.schedule(0), "already Pending: no double enqueue");
        assert_eq!(wq.next(), Some(0));
        assert_eq!(wq.state(0), ShardState::Running);
        assert!(!wq.schedule(0), "Running: no re-enqueue either");
        wq.yield_back(0, false);
        assert_eq!(wq.state(0), ShardState::Idle);
        assert!(wq.schedule(0), "Idle again: schedulable");
    }

    #[test]
    fn yield_back_with_more_requeues_at_the_tail() {
        let wq = WorkQueue::new(3);
        wq.schedule(0);
        wq.schedule(1);
        let s = wq.next().unwrap();
        assert_eq!(s, 0);
        wq.yield_back(0, true); // still has events: behind shard 1 now
        assert_eq!(wq.next(), Some(1), "FIFO fairness");
        wq.yield_back(1, false);
        assert_eq!(wq.next(), Some(0));
        wq.yield_back(0, false);
        wq.shutdown();
        assert_eq!(wq.next(), None);
    }

    #[test]
    fn shutdown_drains_queued_work_before_stopping() {
        let wq = WorkQueue::new(2);
        wq.schedule(0);
        wq.schedule(1);
        wq.shutdown();
        assert_eq!(wq.next(), Some(0));
        wq.yield_back(0, false);
        assert_eq!(wq.next(), Some(1));
        wq.yield_back(1, false);
        assert_eq!(wq.next(), None);
    }

    #[test]
    fn blocked_workers_wake_on_schedule_and_on_shutdown() {
        let wq = Arc::new(WorkQueue::new(1));
        let w = {
            let wq = Arc::clone(&wq);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(s) = wq.next() {
                    seen.push(s);
                    wq.yield_back(s, false);
                }
                seen
            })
        };
        // Give the worker a moment to block, then feed and stop it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        wq.schedule(0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        wq.shutdown();
        assert_eq!(w.join().unwrap(), vec![0]);
    }
}
