//! # hpc-federation — sharded multi-cluster federation
//!
//! Replays one [`WorkloadSpec`](hpc_workload::WorkloadSpec) across *N*
//! independent cluster simulations ("shards") driven in parallel by
//! *M* worker OS threads — the DES analogue of a federated scheduler
//! front-end routing jobs to member clusters.
//!
//! The layer decomposes exactly like a federated deployment does:
//!
//! * **Placement** ([`PlacementPolicy`]) — which *cluster* gets each
//!   job, decided once at submit time against deterministic per-shard
//!   load snapshots. Built-ins: [`RoundRobin`], [`LeastLoaded`],
//!   [`HashByUser`].
//! * **Scheduling** (`elastic_core::SchedulingPolicy`) — which *slots*
//!   inside a cluster, decided per shard by that shard's own policy
//!   instance, unchanged from the single-cluster simulator.
//! * **Execution** ([`FederationRuntime`]) — a work-queue shard
//!   scheduler: each shard cycles `Idle → Pending → Running` under an
//!   atomic CAS, and a worker drains at most one *quantum* of events
//!   per turn before re-queueing the shard at the tail, so a hot shard
//!   cannot starve the rest.
//! * **Resilience** ([`ShardBreakerBoard`]) — one circuit breaker per
//!   shard, fed by that shard's transient-fault schedule. Routed via
//!   [`FederationHandle::submit_resilient`], an open-breaker shard
//!   advertises worst-case load so [`LeastLoaded`] (and any other
//!   load-sensitive policy) stops sending it submits until the breaker
//!   half-opens; `join()` runs the drain → cleanup → terminate phased
//!   shutdown observable through `shutdown_phase()`.
//!
//! Determinism is the design invariant: placement is a single-threaded
//! pre-pass, shards share no mutable state, and quantum-sliced
//! stepping is bit-identical to a monolithic drain — so the outcome is
//! a pure function of (workload, shard configs, placement policy),
//! never of worker count or thread interleaving. A 1-shard federation
//! reproduces `sched_sim::simulate` bit-for-bit.
//!
//! ## Writing a placement policy
//!
//! A [`PlacementPolicy`] sees each job (in arrival order) plus a
//! [`ShardLoad`] snapshot per shard, and names the shard. Here is a
//! priority-tier router that reserves shard 0 for urgent jobs and
//! greedily balances everything else across the rest:
//!
//! ```
//! use hpc_federation::{
//!     FederationConfig, FederationRuntime, LeastLoaded, PlacementPolicy, ShardLoad,
//! };
//! use hpc_metrics::Duration;
//! use hpc_workload::{JobSpec, WorkloadSpec};
//! use sched_sim::SimConfig;
//! use elastic_core::{Policy, PolicyConfig};
//!
//! /// Priority >= `urgent` goes to the reserved shard 0; the rest are
//! /// least-loaded balanced over shards 1..N.
//! struct PriorityTier {
//!     urgent: u32,
//!     spill: LeastLoaded,
//! }
//!
//! impl PlacementPolicy for PriorityTier {
//!     fn name(&self) -> String {
//!         format!("priority_tier(>={})", self.urgent)
//!     }
//!
//!     fn place(&mut self, job: &JobSpec, loads: &[ShardLoad]) -> usize {
//!         if job.priority >= self.urgent || loads.len() == 1 {
//!             return 0;
//!         }
//!         // Balance over the non-reserved shards only.
//!         self.spill.place(job, &loads[1..])
//!     }
//! }
//!
//! let jobs: Vec<JobSpec> = (0..12)
//!     .map(|i| {
//!         JobSpec::malleable(format!("job{i:02}"), 1, 4, 30.0, 1 + (i % 5) as u32)
//!             .at(Duration::from_secs(i as f64))
//!     })
//!     .collect();
//! let workload = WorkloadSpec::new(jobs);
//!
//! let mut fed = FederationRuntime::new(FederationConfig::new(3).with_workers(2), |_| {
//!     SimConfig::paper_default(Box::new(Policy::elastic(PolicyConfig::default())))
//! });
//! let assignment = fed.handle().submit(
//!     &workload,
//!     &mut PriorityTier { urgent: 4, spill: LeastLoaded::new() },
//! );
//!
//! // Urgent jobs (priority 4 and 5) landed on the reserved shard...
//! for (job, &shard) in workload.jobs.iter().zip(&assignment) {
//!     assert_eq!(shard == 0, job.priority >= 4);
//! }
//!
//! fed.start();
//! let outcome = fed.join();
//! assert_eq!(outcome.merged.jobs.len(), 12);
//! ```
//!
//! ## Replaying a trace across shards
//!
//! See `examples/federation.rs` for an end-to-end replay of the
//! bundled SWF trace across four shards with a per-shard utilization
//! table, and the `federation_scale` bench for the throughput-scaling
//! experiment behind `BENCH_sim_scale.json`'s `federation` section.

#![warn(missing_docs)]

mod placement;
mod resilience;
mod runtime;
mod scheduler;

pub use elastic_resilience::{BreakerState, ShutdownPhase};
pub use placement::{HashByUser, LeastLoaded, PlacementPolicy, RoundRobin, ShardLoad};
pub use resilience::ShardBreakerBoard;
pub use runtime::{
    BatchedSubmission, FederationConfig, FederationHandle, FederationOutcome, FederationRuntime,
};
pub use scheduler::ShardState;
