//! One-off throughput probe for the DES core: replay-only timing
//! (workload generation excluded), per-policy filtering, best-of-N.
//!
//! Usage: `perf_probe [N_JOBS]... [elastic|fcfs]`
use elastic_core::{FcfsBackfill, Policy, PolicyConfig, SchedulingPolicy};
use hpc_metrics::Duration;
use sched_sim::{heavy_traffic_replay, heavy_traffic_workload};
use std::time::Instant;

fn elastic() -> Box<dyn SchedulingPolicy> {
    Box::new(Policy::elastic(PolicyConfig {
        rescale_gap: Duration::from_secs(180.0),
        launcher_slots: 1,
        shrink_spares_head: true,
    }))
}

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut only: Option<String> = None;
    for a in std::env::args().skip(1) {
        match a.parse() {
            Ok(n) => sizes.push(n),
            Err(_) => only = Some(a),
        }
    }
    if sizes.is_empty() {
        sizes = vec![100_000, 1_000_000];
    }
    for &n in &sizes {
        let t = Instant::now();
        let wl = heavy_traffic_workload(0, n);
        eprintln!("workload gen n={n}: {:.3}s", t.elapsed().as_secs_f64());
        for name in ["elastic", "fcfs_backfill"] {
            if only.as_deref().is_some_and(|o| !name.starts_with(o)) {
                continue;
            }
            let pol: Box<dyn SchedulingPolicy> = match name {
                "elastic" => elastic(),
                _ => Box::new(FcfsBackfill::new()),
            };
            let t = Instant::now();
            let out = heavy_traffic_replay(pol, &wl);
            let wall = t.elapsed().as_secs_f64();
            let events = 2 * n as u64 + u64::from(out.rescales);
            println!(
                "{name:<14} n={n:<8} wall={wall:>8.3}s  {:>10.0} ev/s  rescales={} peak_q={}",
                events as f64 / wall,
                out.rescales,
                out.peak_queue_len
            );
        }
    }
}
