//! Random workload generation.
//!
//! §4.3.1: "We pick 16 jobs randomly out of these 4 sizes with random
//! priorities between 1 and 5. We repeat this experiment 100 times and
//! report the average metrics across all runs." Generation is seeded
//! (ChaCha8) so every experiment is reproducible bit-for-bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::model::SizeClass;

/// One job of a simulated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJobSpec {
    /// Job name (`job00`, `job01`, …).
    pub name: String,
    /// Size class (grid, steps, replica bounds).
    pub class: SizeClass,
    /// Priority in 1..=5 (larger = more important).
    pub priority: u32,
    /// Minimum replicas (from the class).
    pub min_replicas: u32,
    /// Maximum replicas (from the class).
    pub max_replicas: u32,
}

impl SimJobSpec {
    /// A job of `class` with the class's replica bounds.
    pub fn of_class(name: impl Into<String>, class: SizeClass, priority: u32) -> Self {
        let (min_replicas, max_replicas) = class.replica_bounds();
        SimJobSpec {
            name: name.into(),
            class,
            priority,
            min_replicas,
            max_replicas,
        }
    }
}

/// Generates the paper's random 16-job workload for `seed`.
pub fn generate_workload(seed: u64, n_jobs: usize) -> Vec<SimJobSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n_jobs)
        .map(|i| {
            let class = SizeClass::ALL[rng.gen_range(0..SizeClass::ALL.len())];
            let priority = rng.gen_range(1..=5);
            SimJobSpec::of_class(format!("job{i:02}"), class, priority)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seed_deterministic() {
        let a = generate_workload(42, 16);
        let b = generate_workload(42, 16);
        assert_eq!(a, b);
        let c = generate_workload(43, 16);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn bounds_come_from_the_class() {
        for job in generate_workload(7, 64) {
            assert_eq!(
                (job.min_replicas, job.max_replicas),
                job.class.replica_bounds()
            );
            assert!((1..=5).contains(&job.priority));
        }
    }

    #[test]
    fn all_classes_appear_over_many_draws() {
        let jobs = generate_workload(1, 200);
        for class in SizeClass::ALL {
            assert!(
                jobs.iter().any(|j| j.class == class),
                "{class} never generated"
            );
        }
    }

    #[test]
    fn names_are_ordered_and_unique() {
        let jobs = generate_workload(5, 16);
        let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names[0], "job00");
        assert_eq!(names[15], "job15");
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
