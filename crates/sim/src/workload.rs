//! Workload access for the simulator.
//!
//! The actual workload layer lives in the `hpc-workload` crate — one
//! unified [`WorkloadSpec`] model shared by the DES, the operator
//! harness and the benches, with producers for the paper's seeded
//! random generator (§4.3.1), SWF trace replay and Poisson
//! heavy-traffic arrivals. This module re-exports the pieces the
//! simulator's callers use so `sched_sim::generate_workload` et al.
//! keep working.

pub use hpc_workload::{
    generate_workload, load_workload, poisson_workload, workload_records, write_swf,
    write_workload, FaultError, FaultEvent, FaultKind, FaultSpec, FlakyEvent, FlakyOp, FlakySpec,
    JobShape, JobSpec, MalleabilityModel, SwfError, SwfLoadConfig, WorkloadError, WorkloadSpec,
};
