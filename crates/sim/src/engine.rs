//! The discrete-event scheduling simulator.
//!
//! Drives the *same* policy code as the live operator (anything
//! implementing `elastic_core::SchedulingPolicy`) over an event
//! timeline: job submissions arrive at a fixed gap; job progress
//! integrates `rate(replicas)` between events; a rescale pauses
//! progress for the modeled overhead window and re-schedules the job's
//! completion; a cancellation tears the job down mid-flight and lets
//! the policy redistribute the freed slots. As in the paper's
//! simulator, operator/Kubernetes pod-startup overhead is not modeled
//! (§4.3.1).

use elastic_core::{Action, ClusterView, JobOutcome, JobState, RunMetrics, SchedulingPolicy};
use hpc_metrics::{Duration, SimTime, UtilizationRecorder};

use crate::events::{Event, EventQueue};
use crate::model::{OverheadModel, ScalingModel};
use crate::workload::SimJobSpec;

/// Simulation parameters.
pub struct SimConfig {
    /// Cluster slots (the paper's testbed: 64).
    pub capacity: u32,
    /// The scheduling policy under test.
    pub policy: Box<dyn SchedulingPolicy>,
    /// Gap between consecutive job submissions.
    pub submission_gap: Duration,
    /// Strong-scaling model.
    pub scaling: ScalingModel,
    /// Rescale-overhead model.
    pub overhead: OverheadModel,
    /// Client cancellations to inject: `(time, job name)` — the DES
    /// analogue of `SchedulerClient::cancel` (ignored for jobs not yet
    /// submitted or already terminal at that time).
    pub cancellations: Vec<(Duration, String)>,
}

impl SimConfig {
    /// The paper's default setup: 64 slots, calibrated models.
    pub fn paper_default(policy: Box<dyn SchedulingPolicy>, submission_gap: Duration) -> Self {
        SimConfig {
            capacity: 64,
            policy,
            submission_gap,
            scaling: ScalingModel::default(),
            overhead: OverheadModel::default(),
            cancellations: Vec::new(),
        }
    }
}

/// Full result of one simulation run.
pub struct SimOutcome {
    /// Aggregate metrics (Table 1 columns; completed jobs only).
    pub metrics: RunMetrics,
    /// Per-job slot allocation over time (Fig. 9 profiles).
    pub util: UtilizationRecorder,
    /// Number of rescale actions applied.
    pub rescales: u32,
    /// Number of jobs cancelled before completing.
    pub cancelled: u32,
}

struct JobRt {
    spec: SimJobSpec,
    submitted: bool,
    submitted_at: SimTime,
    running: bool,
    completed: bool,
    cancelled: bool,
    replicas: u32,
    last_action: SimTime,
    started_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    steps_done: f64,
    last_update: SimTime,
    pause_until: SimTime,
    generation: u64,
}

impl JobRt {
    fn new(spec: SimJobSpec) -> JobRt {
        JobRt {
            spec,
            submitted: false,
            submitted_at: SimTime::ZERO,
            running: false,
            completed: false,
            cancelled: false,
            replicas: 0,
            last_action: SimTime::NEG_INFINITY,
            started_at: None,
            completed_at: None,
            steps_done: 0.0,
            last_update: SimTime::ZERO,
            pause_until: SimTime::NEG_INFINITY,
            generation: 0,
        }
    }

    /// Integrates progress up to `now` (no progress inside the rescale
    /// pause window).
    fn advance(&mut self, now: SimTime, scaling: &ScalingModel) {
        if self.running && !self.completed {
            let start = if self.pause_until > self.last_update {
                self.pause_until.min(now)
            } else {
                self.last_update
            };
            if now > start {
                self.steps_done +=
                    scaling.rate(self.spec.class, self.replicas) * (now - start).as_secs();
            }
        }
        self.last_update = now;
    }

    fn view_state(&self) -> JobState {
        JobState {
            name: self.spec.name.clone(),
            min_replicas: self.spec.min_replicas,
            max_replicas: self.spec.max_replicas,
            priority: self.spec.priority,
            submitted_at: self.submitted_at,
            replicas: if self.running { self.replicas } else { 0 },
            last_action: self.last_action,
            running: self.running,
        }
    }
}

/// Runs one simulation to completion.
pub fn simulate(cfg: &SimConfig, workload: &[SimJobSpec]) -> SimOutcome {
    assert!(!workload.is_empty(), "workload must have jobs");
    let launcher = cfg.policy.launcher_slots();
    let mut jobs: Vec<JobRt> = workload.iter().cloned().map(JobRt::new).collect();
    let mut queue = EventQueue::new();
    let mut util = UtilizationRecorder::new(cfg.capacity);
    let mut rescales = 0u32;
    let mut cancelled_count = 0u32;

    for i in 0..jobs.len() {
        let at = SimTime::ZERO + Duration::from_secs(cfg.submission_gap.as_secs() * i as f64);
        queue.push(at, Event::Submit { job: i });
    }
    for (at, name) in &cfg.cancellations {
        let i = workload
            .iter()
            .position(|j| j.name == *name)
            .unwrap_or_else(|| panic!("cancellation for unknown job {name}"));
        queue.push(SimTime::ZERO + *at, Event::Cancel { job: i });
    }

    let build_view = |jobs: &[JobRt]| -> ClusterView {
        let mut states = Vec::new();
        let mut committed = 0u32;
        for j in jobs {
            if j.completed || j.cancelled || !j.submitted {
                continue;
            }
            if j.running {
                committed += j.replicas + launcher;
            }
            states.push(j.view_state());
        }
        ClusterView {
            capacity: cfg.capacity,
            free_slots: cfg.capacity.saturating_sub(committed),
            jobs: states,
        }
    };

    let index_of = |jobs: &[JobRt], name: &str| -> usize {
        jobs.iter()
            .position(|j| j.spec.name == name)
            .unwrap_or_else(|| panic!("action for unknown job {name}"))
    };

    // Applies one policy action; returns the completion event to
    // schedule, if any.
    let apply = |jobs: &mut Vec<JobRt>,
                 queue: &mut EventQueue,
                 util: &mut UtilizationRecorder,
                 rescales: &mut u32,
                 cancels: &mut u32,
                 action: &Action,
                 now: SimTime| {
        match action {
            Action::Create { job, replicas } => {
                let i = index_of(jobs, job);
                let j = &mut jobs[i];
                debug_assert!(!j.running && !j.completed);
                j.running = true;
                j.replicas = *replicas;
                j.last_action = now;
                j.started_at = Some(now);
                j.last_update = now;
                util.set(now, job.clone(), *replicas);
                let rate = cfg.scaling.rate(j.spec.class, j.replicas);
                let remaining = j.spec.class.steps() as f64 - j.steps_done;
                let finish = now + Duration::from_secs(remaining / rate);
                queue.push(
                    finish,
                    Event::Completion {
                        job: i,
                        generation: j.generation,
                    },
                );
            }
            Action::Shrink { job, to_replicas } | Action::Expand { job, to_replicas } => {
                let i = index_of(jobs, job);
                let j = &mut jobs[i];
                debug_assert!(j.running && !j.completed);
                j.advance(now, &cfg.scaling);
                let cost = cfg.overhead.total(j.spec.class, j.replicas, *to_replicas);
                j.pause_until = now + cost;
                j.replicas = *to_replicas;
                j.last_action = now;
                j.generation += 1;
                *rescales += 1;
                util.set(now, job.clone(), *to_replicas);
                let rate = cfg.scaling.rate(j.spec.class, j.replicas);
                let remaining = (j.spec.class.steps() as f64 - j.steps_done).max(0.0);
                let finish = j.pause_until + Duration::from_secs(remaining / rate);
                queue.push(
                    finish,
                    Event::Completion {
                        job: i,
                        generation: j.generation,
                    },
                );
            }
            Action::Enqueue { .. } => {}
            Action::Cancel { job } => {
                let i = index_of(jobs, job);
                let j = &mut jobs[i];
                if j.completed || j.cancelled || !j.submitted {
                    return;
                }
                j.advance(now, &cfg.scaling);
                j.cancelled = true;
                j.running = false;
                j.generation += 1; // invalidate any scheduled completion
                j.completed_at = Some(now);
                *cancels += 1;
                util.set(now, job.clone(), 0);
            }
        }
    };

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Submit { job } => {
                if jobs[job].cancelled {
                    continue; // cancelled before it was ever submitted
                }
                jobs[job].submitted = true;
                jobs[job].submitted_at = now;
                jobs[job].last_update = now;
                let name = jobs[job].spec.name.clone();
                let view = build_view(&jobs);
                let actions = cfg.policy.on_submit(&view, &name, now);
                for a in &actions {
                    apply(
                        &mut jobs,
                        &mut queue,
                        &mut util,
                        &mut rescales,
                        &mut cancelled_count,
                        a,
                        now,
                    );
                }
            }
            Event::Completion { job, generation } => {
                if jobs[job].generation != generation || jobs[job].completed || jobs[job].cancelled
                {
                    continue; // stale: the job was rescaled or cancelled meanwhile
                }
                jobs[job].advance(now, &cfg.scaling);
                debug_assert!(
                    jobs[job].steps_done >= jobs[job].spec.class.steps() as f64 - 1e-3,
                    "completion fired early for {}",
                    jobs[job].spec.name
                );
                jobs[job].completed = true;
                jobs[job].running = false;
                jobs[job].completed_at = Some(now);
                util.set(now, jobs[job].spec.name.clone(), 0);
                let view = build_view(&jobs);
                let actions = cfg.policy.on_complete(&view, now);
                for a in &actions {
                    apply(
                        &mut jobs,
                        &mut queue,
                        &mut util,
                        &mut rescales,
                        &mut cancelled_count,
                        a,
                        now,
                    );
                }
            }
            Event::Cancel { job } => {
                if jobs[job].completed || jobs[job].cancelled || !jobs[job].submitted {
                    continue; // terminal already, or cancel-before-submit
                }
                let held_slots = jobs[job].running;
                let name = jobs[job].spec.name.clone();
                apply(
                    &mut jobs,
                    &mut queue,
                    &mut util,
                    &mut rescales,
                    &mut cancelled_count,
                    &Action::Cancel { job: name },
                    now,
                );
                if held_slots {
                    // Freed capacity: the policy redistributes exactly
                    // as after a completion.
                    let view = build_view(&jobs);
                    let actions = cfg.policy.on_complete(&view, now);
                    for a in &actions {
                        apply(
                            &mut jobs,
                            &mut queue,
                            &mut util,
                            &mut rescales,
                            &mut cancelled_count,
                            a,
                            now,
                        );
                    }
                }
            }
        }
    }

    for j in &jobs {
        assert!(
            j.completed || j.cancelled,
            "job {} never completed (starved in queue)",
            j.spec.name
        );
    }

    let outcomes: Vec<JobOutcome> = jobs
        .iter()
        .filter(|j| j.completed)
        .map(|j| JobOutcome {
            name: j.spec.name.clone(),
            priority: j.spec.priority,
            submitted_at: j.submitted_at,
            started_at: j.started_at.expect("started"),
            completed_at: j.completed_at.expect("completed"),
        })
        .collect();
    let metrics = if outcomes.is_empty() {
        // Every job was cancelled: nothing completed, nothing to
        // aggregate.
        RunMetrics::empty(cfg.policy.name(), rescales)
    } else {
        let first_submit = outcomes.iter().map(|o| o.submitted_at).min().expect("jobs");
        let last_complete = outcomes.iter().map(|o| o.completed_at).max().expect("jobs");
        let utilization = util.average_utilization(first_submit, last_complete);
        RunMetrics::from_outcomes(cfg.policy.name(), outcomes, utilization, rescales)
    };
    SimOutcome {
        metrics,
        util,
        rescales,
        cancelled: cancelled_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SizeClass;
    use elastic_core::{FcfsBackfill, Policy, PolicyConfig, PolicyKind};

    fn policy(kind: PolicyKind, gap: f64) -> Box<dyn SchedulingPolicy> {
        Box::new(Policy::of_kind(
            kind,
            PolicyConfig {
                rescale_gap: Duration::from_secs(gap),
                launcher_slots: 1,
                shrink_spares_head: true,
            },
        ))
    }

    fn one_job(class: SizeClass) -> Vec<SimJobSpec> {
        vec![SimJobSpec::of_class("j0", class, 3)]
    }

    #[test]
    fn single_job_runtime_matches_model() {
        let cfg = SimConfig::paper_default(
            policy(PolicyKind::Elastic, 180.0),
            Duration::from_secs(90.0),
        );
        let out = simulate(&cfg, &one_job(SizeClass::Medium));
        // Empty cluster: job runs at max replicas the whole time.
        let expect = cfg.scaling.runtime(SizeClass::Medium, 16);
        assert!(
            (out.metrics.total_time - expect).abs() < 1e-6,
            "total {} != model {expect}",
            out.metrics.total_time
        );
        assert_eq!(out.rescales, 0);
        assert_eq!(out.metrics.weighted_response, 0.0);
    }

    #[test]
    fn rigid_min_runs_longer_than_rigid_max_for_one_job() {
        let gap = Duration::from_secs(90.0);
        let wl = one_job(SizeClass::Large);
        let min = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMin, 180.0), gap),
            &wl,
        );
        let max = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMax, 180.0), gap),
            &wl,
        );
        assert!(min.metrics.total_time > max.metrics.total_time);
    }

    #[test]
    fn simulation_is_deterministic() {
        let wl = crate::workload::generate_workload(11, 16);
        let cfg = SimConfig::paper_default(
            policy(PolicyKind::Elastic, 180.0),
            Duration::from_secs(90.0),
        );
        let a = simulate(&cfg, &wl);
        let b = simulate(&cfg, &wl);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.rescales, b.rescales);
    }

    #[test]
    fn elastic_rescales_under_contention() {
        let wl = crate::workload::generate_workload(3, 16);
        let cfg = SimConfig::paper_default(
            policy(PolicyKind::Elastic, 180.0),
            Duration::from_secs(30.0), // heavy traffic
        );
        let out = simulate(&cfg, &wl);
        assert!(out.rescales > 0, "elastic never rescaled under load");
        // Non-elastic policies never rescale.
        for kind in [
            PolicyKind::Moldable,
            PolicyKind::RigidMin,
            PolicyKind::RigidMax,
        ] {
            let out = simulate(
                &SimConfig::paper_default(policy(kind, 180.0), Duration::from_secs(30.0)),
                &wl,
            );
            assert_eq!(out.rescales, 0, "{kind} rescaled");
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        for seed in 0..5 {
            let wl = crate::workload::generate_workload(seed, 16);
            for kind in PolicyKind::ALL {
                let cfg = SimConfig::paper_default(policy(kind, 60.0), Duration::from_secs(20.0));
                let out = simulate(&cfg, &wl);
                // Worker slots alone must fit under capacity minus one
                // launcher per concurrently running job (>= 1).
                assert!(
                    out.util.peak() <= 64,
                    "{kind} seed {seed}: peak worker slots {}",
                    out.util.peak()
                );
            }
        }
    }

    #[test]
    fn utilization_in_unit_range_and_meaningful() {
        let wl = crate::workload::generate_workload(9, 16);
        let cfg = SimConfig::paper_default(
            policy(PolicyKind::Elastic, 180.0),
            Duration::from_secs(90.0),
        );
        let out = simulate(&cfg, &wl);
        assert!(out.metrics.utilization > 0.3);
        assert!(out.metrics.utilization <= 1.0);
    }

    #[test]
    fn fcfs_backfill_runs_through_the_simulator() {
        let wl = crate::workload::generate_workload(11, 16);
        let cfg = SimConfig::paper_default(
            Box::new(FcfsBackfill::new()),
            Duration::from_secs(30.0), // heavy traffic: the queue blocks
        );
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.policy, "fcfs_backfill");
        assert_eq!(out.metrics.jobs.len(), 16);
        assert_eq!(out.rescales, 0, "FCFS never rescales");
        assert!(out.metrics.utilization > 0.2 && out.metrics.utilization <= 1.0);
        // Determinism holds for the new policy too.
        let cfg2 =
            SimConfig::paper_default(Box::new(FcfsBackfill::new()), Duration::from_secs(30.0));
        assert_eq!(simulate(&cfg2, &wl).metrics, out.metrics);
    }

    #[test]
    fn cancellation_frees_slots_the_policy_reassigns() {
        // Three Large jobs on 64 slots: "a" takes 32+1, "b" 30+1, "c"
        // finds the cluster full and queues. Cancelling "a" mid-run
        // must make elastic reassign the freed slots *at the cancel
        // timestamp*: "b" expands and "c" starts immediately.
        use crate::workload::SimJobSpec;
        let wl = vec![
            SimJobSpec::of_class("a", SizeClass::Large, 3),
            SimJobSpec::of_class("b", SizeClass::Large, 3),
            SimJobSpec::of_class("c", SizeClass::Large, 3),
        ];
        let mut cfg =
            SimConfig::paper_default(policy(PolicyKind::Elastic, 10.0), Duration::from_secs(0.0));
        cfg.cancellations = vec![(Duration::from_secs(100.0), "a".into())];
        let out = simulate(&cfg, &wl);
        assert_eq!(out.cancelled, 1);
        assert_eq!(out.metrics.jobs.len(), 2, "victim excluded from outcomes");
        assert!(out.metrics.jobs.iter().all(|j| j.name != "a"));
        let c = out.metrics.jobs.iter().find(|j| j.name == "c").unwrap();
        assert_eq!(
            c.started_at,
            SimTime::from_secs(100.0),
            "queued job must start the instant the cancellation frees slots"
        );
        assert!(out.rescales >= 1, "survivor should expand into the hole");
    }

    #[test]
    fn all_jobs_cancelled_yields_empty_metrics_without_panicking() {
        let wl = vec![SimJobSpec::of_class("solo", SizeClass::Large, 3)];
        let mut cfg =
            SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0), Duration::from_secs(0.0));
        cfg.cancellations = vec![(Duration::from_secs(50.0), "solo".into())];
        let out = simulate(&cfg, &wl);
        assert_eq!(out.cancelled, 1);
        assert!(out.metrics.jobs.is_empty());
        assert_eq!(out.metrics.policy, "elastic");
        assert_eq!(out.metrics.total_time, 0.0);
    }

    #[test]
    fn cancel_of_queued_job_just_removes_it() {
        let wl = crate::workload::generate_workload(5, 6);
        // Cancel the last job the moment it sits in the queue under
        // heavy traffic (it is submitted at 5 * 10 = 50s).
        let victim = wl[5].name.clone();
        let mut cfg = SimConfig::paper_default(
            policy(PolicyKind::RigidMax, 180.0),
            Duration::from_secs(10.0),
        );
        cfg.cancellations = vec![(Duration::from_secs(55.0), victim)];
        let out = simulate(&cfg, &wl);
        assert!(out.cancelled <= 1, "at most the one requested cancel");
        assert_eq!(out.metrics.jobs.len() + out.cancelled as usize, 6);
    }

    #[test]
    fn response_times_nonnegative_and_ordered_sanely() {
        let wl = crate::workload::generate_workload(21, 16);
        let gap = Duration::from_secs(90.0);
        let min = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMin, 180.0), gap),
            &wl,
        );
        for j in &min.metrics.jobs {
            assert!(j.started_at >= j.submitted_at);
            assert!(j.completed_at >= j.started_at);
        }
        // min_replicas leaves more slack => its weighted response should
        // be no worse than rigid-max's (paper Fig. 7c).
        let max = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMax, 180.0), gap),
            &wl,
        );
        assert!(
            min.metrics.weighted_response <= max.metrics.weighted_response + 1e-9,
            "min {} > max {}",
            min.metrics.weighted_response,
            max.metrics.weighted_response
        );
    }
}
