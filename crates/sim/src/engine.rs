//! The discrete-event scheduling simulator.
//!
//! Drives the *same* policy code as the live operator (anything
//! implementing `elastic_core::SchedulingPolicy`) over an event
//! timeline: job submissions fire at the *per-job arrival times* of the
//! [`WorkloadSpec`] (fixed gaps, Poisson bursts and SWF trace replays
//! are all just workloads); job progress integrates the shape's
//! `rate(replicas)` between events; a rescale pauses progress for the
//! modeled overhead window and re-schedules the job's completion; a
//! cancellation (per-job `cancel_at` or [`SimConfig::cancellations`])
//! tears the job down mid-flight and lets the policy redistribute the
//! freed slots; and a policy that requests a
//! `SchedulingPolicy::timer_interval` gets periodic [`Event::Timer`]s
//! (the DES analogue of the operator's timer pass — aging sweeps and
//! other trigger-less decisions replay in both engines). As in the
//! paper's simulator, operator/Kubernetes pod-startup overhead is not
//! modeled (§4.3.1).
//!
//! The workload's `FaultSpec` injects capacity loss the same way:
//! [`Event::NodeFail`]/[`Event::CapacityReclaim`] mark slots failed in
//! the view and consult `SchedulingPolicy::on_fault`, whose plan must
//! cover the deficit (evictions roll progress back to the last
//! checkpoint boundary and relaunch behind a FullRestart recovery
//! window; requeues lose the whole attempt and re-enter through
//! [`Event::Requeue`] after an exponential backoff, permanently failing
//! once the retry budget is spent); [`Event::CapacityReturn`] hands
//! reclaimed slots back. Wasted core-seconds and recovery counts are
//! banked at the exact decision instants the operator uses, so
//! fault-laden replays still cross-validate bit-identically.
//!
//! ## Trace-scale throughput
//!
//! The engine replays multi-thousand-job traces (the Zojer et al.
//! regime) because its per-event cost is O(log n), not O(n):
//!
//! * One persistent [`ClusterView`] is maintained across the whole run
//!   — submissions insert, completions/cancellations remove, and every
//!   policy action folds in via `apply_action`. No per-event rebuild,
//!   no `String` ever touches the loop (jobs are dense [`JobId`]s; the
//!   workload's names surface only in [`SimOutcome::names`]).
//! * Same-timestamp submission bursts are *coalesced* into a single
//!   [`Event::Submit`] carrying an id range: one heap entry, one pop,
//!   n policy decisions.
//! * Invalidated completions are counted and the heap is *compacted*
//!   once they exceed half of it, so rescale-heavy runs keep the queue
//!   O(live jobs) ([`SimOutcome::peak_queue_len`] exposes the
//!   high-water mark).

use elastic_core::{
    apply_action, Action, ClusterView, CompleteBurst, FaultStats, JobOutcome, JobState, RunMetrics,
    SchedulingPolicy, SubmitBurst,
};
use elastic_resilience::{FlakyOutcome, ResilienceState};
use hpc_metrics::{Duration, JobId, SimTime, UtilizationRecorder};

use crate::events::{Event, EventQueue};
use crate::model::{OverheadModel, ScalingModel};
use crate::workload::{FaultEvent, FaultKind, FaultSpec, FlakyOp, JobSpec, WorkloadSpec};

/// Simulation parameters. Submission times are *not* here: every job
/// of the replayed [`WorkloadSpec`] carries its own arrival time
/// (build fixed-gap schedules with `WorkloadSpec::spaced_every`).
pub struct SimConfig {
    /// Cluster slots (the paper's testbed: 64).
    pub capacity: u32,
    /// The scheduling policy under test.
    pub policy: Box<dyn SchedulingPolicy>,
    /// Strong-scaling model.
    pub scaling: ScalingModel,
    /// Rescale-overhead model.
    pub overhead: OverheadModel,
    /// Extra client cancellations to inject: `(time, job name)` — the
    /// DES analogue of `SchedulerClient::cancel` (ignored for jobs not
    /// yet submitted or already terminal at that time). Per-job
    /// `cancel_at` times in the workload are injected as well.
    pub cancellations: Vec<(Duration, String)>,
}

impl SimConfig {
    /// The paper's default setup: 64 slots, calibrated models.
    pub fn paper_default(policy: Box<dyn SchedulingPolicy>) -> Self {
        SimConfig {
            capacity: 64,
            policy,
            scaling: ScalingModel::default(),
            overhead: OverheadModel::default(),
            cancellations: Vec::new(),
        }
    }
}

/// Full result of one simulation run.
pub struct SimOutcome {
    /// Aggregate metrics (Table 1 columns; completed jobs only).
    pub metrics: RunMetrics,
    /// Per-job slot allocation over time (Fig. 9 profiles), keyed by
    /// [`JobId`]; resolve names through [`SimOutcome::names`].
    pub util: UtilizationRecorder,
    /// Number of rescale actions applied.
    pub rescales: u32,
    /// Number of jobs cancelled before completing.
    pub cancelled: u32,
    /// Job names indexed by [`JobId`] (= workload order) — the
    /// reporting edge of the id-keyed run.
    pub names: Vec<String>,
    /// Event-queue high-water mark counting *live* (non-stale) events
    /// only — the figure that tracks real future work; with stale
    /// compaction this stays O(live jobs) even on rescale-heavy runs.
    pub peak_queue_len: usize,
    /// Raw event-queue high-water mark including stale entries awaiting
    /// compaction — the historical semantics, kept for the queue-bound
    /// regression test (it bounds *storage*, not live work).
    pub peak_queue_len_raw: usize,
}

struct JobRt {
    spec: JobSpec,
    submitted: bool,
    submitted_at: SimTime,
    running: bool,
    completed: bool,
    cancelled: bool,
    /// Permanently failed: the retry budget ran out on a requeue.
    failed: bool,
    replicas: u32,
    last_action: SimTime,
    started_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    steps_done: f64,
    last_update: SimTime,
    pause_until: SimTime,
    generation: u64,
    /// Effective re-submission instant of a requeued job (the backoff
    /// deadline); the view orders the job by it, not by its original
    /// arrival, exactly like the operator's `status.requeued_at`.
    requeued_at: Option<SimTime>,
    /// Kill-and-requeue attempts consumed so far.
    attempts: u32,
    /// The next launch restores from a checkpoint: pay the FullRestart
    /// recovery overhead before progress resumes.
    needs_recovery: bool,
    /// Core-seconds of the current attempt, banked at every
    /// allocation-change boundary (never per tick) so requeue waste is
    /// bit-identical between engines.
    attempt_core_acc: f64,
    /// When the current allocation segment began.
    alloc_since: SimTime,
}

impl JobRt {
    fn new(spec: JobSpec) -> JobRt {
        JobRt {
            spec,
            submitted: false,
            submitted_at: SimTime::ZERO,
            running: false,
            completed: false,
            cancelled: false,
            failed: false,
            replicas: 0,
            last_action: SimTime::NEG_INFINITY,
            started_at: None,
            completed_at: None,
            steps_done: 0.0,
            last_update: SimTime::ZERO,
            pause_until: SimTime::NEG_INFINITY,
            generation: 0,
            requeued_at: None,
            attempts: 0,
            needs_recovery: false,
            attempt_core_acc: 0.0,
            alloc_since: SimTime::ZERO,
        }
    }

    /// Integrates progress up to `now` (no progress inside the rescale
    /// pause window).
    fn advance(&mut self, now: SimTime, scaling: &ScalingModel) {
        if self.running && !self.completed {
            let start = if self.pause_until > self.last_update {
                self.pause_until.min(now)
            } else {
                self.last_update
            };
            if now > start {
                self.steps_done +=
                    scaling.job_rate(&self.spec.shape, self.replicas) * (now - start).as_secs();
            }
        }
        self.last_update = now;
    }

    fn view_state(&self, id: JobId) -> JobState {
        JobState {
            id,
            min_replicas: self.spec.min_replicas(),
            max_replicas: self.spec.max_replicas(),
            priority: self.spec.priority,
            submitted_at: self.requeued_at.unwrap_or(self.submitted_at),
            replicas: if self.running { self.replicas } else { 0 },
            last_action: self.last_action,
            running: self.running,
            walltime_estimate: self.spec.walltime_estimate,
        }
    }
}

/// Applies one policy action to the job runtimes and the event queue
/// (the caller has already folded it into the persistent view).
#[allow(clippy::too_many_arguments)]
fn apply_runtime(
    cfg: &SimConfig,
    fspec: &FaultSpec,
    jobs: &mut [JobRt],
    queue: &mut EventQueue,
    util: &mut UtilizationRecorder,
    rescales: &mut u32,
    cancels: &mut u32,
    faults: &mut FaultStats,
    action: &Action,
    now: SimTime,
) {
    match *action {
        Action::Create { job, replicas } => {
            let j = &mut jobs[job.index()];
            debug_assert!(!j.running && !j.completed && !j.failed);
            j.running = true;
            j.replicas = replicas;
            j.last_action = now;
            j.started_at = Some(now);
            j.last_update = now;
            // A fresh attempt ledger: waste on a later requeue charges
            // only from this launch onward.
            j.attempt_core_acc = 0.0;
            j.alloc_since = now;
            // A checkpoint/restart relaunch pays the FullRestart
            // recovery window before any progress; a plain launch (or a
            // kill-and-requeue restart from zero) starts immediately.
            j.pause_until = if j.needs_recovery {
                j.needs_recovery = false;
                now + cfg.overhead.recovery_total(&j.spec.shape, replicas)
            } else {
                SimTime::NEG_INFINITY
            };
            util.set(now, job, replicas);
            let rate = cfg.scaling.job_rate(&j.spec.shape, j.replicas);
            let remaining = (j.spec.work() - j.steps_done).max(0.0);
            let finish = j.pause_until.max(now) + Duration::from_secs(remaining / rate);
            queue.push(
                finish,
                Event::Completion {
                    job,
                    generation: j.generation,
                },
            );
        }
        Action::Shrink { job, to_replicas } | Action::Expand { job, to_replicas } => {
            let j = &mut jobs[job.index()];
            debug_assert!(j.running && !j.completed);
            j.advance(now, &cfg.scaling);
            j.attempt_core_acc += f64::from(j.replicas) * (now - j.alloc_since).as_secs();
            j.alloc_since = now;
            let cost = cfg
                .overhead
                .job_total(&j.spec.shape, j.replicas, to_replicas);
            j.pause_until = now + cost;
            j.replicas = to_replicas;
            j.last_action = now;
            j.generation += 1;
            queue.mark_stale(); // the previously scheduled completion died
            *rescales += 1;
            util.set(now, job, to_replicas);
            let rate = cfg.scaling.job_rate(&j.spec.shape, j.replicas);
            let remaining = (j.spec.work() - j.steps_done).max(0.0);
            let finish = j.pause_until + Duration::from_secs(remaining / rate);
            queue.push(
                finish,
                Event::Completion {
                    job,
                    generation: j.generation,
                },
            );
        }
        Action::Enqueue { .. } => {}
        Action::Evict { job } => {
            // Checkpoint/restart preemption: roll progress back to the
            // last checkpoint-interval boundary of this attempt, keep
            // what the checkpoint retained, and mark the job for a
            // recovery-priced relaunch. Waste is only the rolled-back
            // tail — the same ledger the operator keeps.
            let j = &mut jobs[job.index()];
            debug_assert!(j.running && !j.completed);
            j.advance(now, &cfg.scaling);
            let t = fspec.checkpoint_interval.as_secs();
            let elapsed = (now - j.started_at.expect("running job has started")).as_secs();
            let since_ckpt = elapsed - (elapsed / t).floor() * t;
            let rate = cfg.scaling.job_rate(&j.spec.shape, j.replicas);
            faults.wasted_core_seconds += f64::from(j.replicas) * since_ckpt;
            faults.evictions += 1;
            j.steps_done = (j.steps_done - rate * since_ckpt).max(0.0);
            j.running = false;
            j.needs_recovery = true;
            j.last_action = now;
            j.generation += 1;
            queue.mark_stale(); // its scheduled completion died
            util.set(now, job, 0);
        }
        Action::Requeue { job } => {
            // Kill-and-requeue: the whole attempt is wasted; the job
            // re-enters the queue after an exponential backoff, or
            // fails permanently once the retry budget runs out.
            let j = &mut jobs[job.index()];
            debug_assert!(j.running && !j.completed);
            j.advance(now, &cfg.scaling);
            j.attempt_core_acc += f64::from(j.replicas) * (now - j.alloc_since).as_secs();
            faults.wasted_core_seconds += j.attempt_core_acc;
            faults.requeues += 1;
            j.attempt_core_acc = 0.0;
            j.steps_done = 0.0;
            j.running = false;
            j.needs_recovery = false;
            j.last_action = SimTime::NEG_INFINITY;
            j.attempts += 1;
            j.generation += 1;
            queue.mark_stale(); // its scheduled completion died
            util.set(now, job, 0);
            if j.attempts >= fspec.max_attempts {
                j.failed = true;
                j.completed_at = Some(now);
                faults.permanent_failures += 1;
            } else {
                let due = now + fspec.backoff_for(j.attempts);
                j.requeued_at = Some(due);
                queue.push(due, Event::Requeue { job });
            }
        }
        Action::Cancel { job } => {
            let j = &mut jobs[job.index()];
            if j.completed || j.cancelled || j.failed || !j.submitted {
                return;
            }
            j.advance(now, &cfg.scaling);
            if j.running {
                queue.mark_stale(); // its scheduled completion died
            }
            j.cancelled = true;
            j.running = false;
            j.generation += 1; // invalidate any scheduled completion
            j.completed_at = Some(now);
            *cancels += 1;
            util.set(now, job, 0);
        }
    }
}

/// Resumable simulation state — the per-shard DES drive.
///
/// [`simulate`] builds one of these and drains it in a single call. The
/// federation layer (`hpc-federation`) instead keeps one `SimState` per
/// shard and drains each a bounded number of events at a time (its
/// work-queue *time quantum*), interleaving many shards over a small
/// pool of worker threads. Stepping in any quantum size is
/// **bit-identical** to one monolithic run: events pop in the same
/// deterministic order regardless of where the drain pauses.
///
/// The state does not own the [`SimConfig`] or [`WorkloadSpec`] it was
/// built from (the policy box is not cloneable; owners keep both next
/// to the state); every [`SimState::step`]/[`SimState::finish`] call
/// must receive the *same* pair passed to [`SimState::new`].
pub struct SimState {
    jobs: Vec<JobRt>,
    queue: EventQueue,
    view: ClusterView,
    util: UtilizationRecorder,
    rescales: u32,
    cancelled_count: u32,
    peak_queue_len: usize,
    peak_queue_len_raw: usize,
    fault_stats: FaultStats,
    /// The shared breaker/budget/health decision core for the
    /// workload's `FlakySpec` (idle when the spec is empty).
    resilience: ResilienceState,
    launcher: u32,
    timer_interval: Option<Duration>,
    events_processed: u64,
}

impl SimState {
    /// Validates `workload` and seeds the event queue (submissions
    /// coalesced per timestamp, cancellations, the policy timer, fault
    /// events last) exactly as a monolithic [`simulate`] run does.
    pub fn new(cfg: &SimConfig, workload: &WorkloadSpec) -> SimState {
        workload
            .validate()
            .unwrap_or_else(|e| panic!("workload not replayable: {e}"));
        let launcher = cfg.policy.launcher_slots();
        let jobs: Vec<JobRt> = workload.jobs.iter().cloned().map(JobRt::new).collect();
        let mut queue = EventQueue::new();

        // Submit coalescing: consecutive jobs whose arrival instants
        // coincide (zero gaps, or trace bursts) share one Submit event.
        let submit_at = |i: usize| SimTime::ZERO + workload.jobs[i].arrival;
        let mut i = 0usize;
        while i < jobs.len() {
            let at = submit_at(i);
            let mut count = 1usize;
            while i + count < jobs.len() && submit_at(i + count) == at {
                count += 1;
            }
            queue.push(
                at,
                Event::Submit {
                    first: JobId::from_index(i),
                    count: count as u32,
                },
            );
            i += count;
        }
        for (i, job) in workload.jobs.iter().enumerate() {
            if let Some(at) = job.cancel_at {
                queue.push(
                    SimTime::ZERO + at,
                    Event::Cancel {
                        job: JobId::from_index(i),
                    },
                );
            }
        }
        // Policy timer: the DES analogue of the operator's periodic
        // timer pass. First firing one interval past the epoch; each
        // firing reschedules the next while any job is still
        // non-terminal.
        let timer_interval = cfg.policy.timer_interval();
        if let Some(iv) = timer_interval {
            assert!(
                iv.as_secs().is_finite() && iv.as_secs() > 0.0,
                "timer_interval must be finite and positive"
            );
            queue.push(SimTime::ZERO + iv, Event::Timer);
        }
        for (at, name) in &cfg.cancellations {
            let i = workload
                .jobs
                .iter()
                .position(|j| j.name == *name)
                .unwrap_or_else(|| panic!("cancellation for unknown job {name}"));
            queue.push(
                SimTime::ZERO + *at,
                Event::Cancel {
                    job: JobId::from_index(i),
                },
            );
        }
        // Fault events are pushed last so at shared instants they sort
        // after submissions/cancellations — the order the operator's
        // tick reconciles them in. (Fault instants must not collide
        // with policy timer firings: the engines order those two
        // differently.)
        for e in &workload.faults.events {
            let ev = match e.kind {
                FaultKind::NodeFail => Event::NodeFail { slots: e.slots },
                FaultKind::Reclaim => Event::CapacityReclaim { slots: e.slots },
                FaultKind::Return => Event::CapacityReturn { slots: e.slots },
            };
            queue.push(SimTime::ZERO + e.at, ev);
        }
        // Flaky (transient control-plane) events seed after the
        // capacity faults: at shared instants they sort last, matching
        // the operator's tick, which reconciles flaky notices after
        // capacity notices. (`FlakySpec::storm` keeps flaky instants
        // off the policy-timer grid for the same reason as above.)
        for (i, e) in workload.faults.flaky.events.iter().enumerate() {
            queue.push(SimTime::ZERO + e.at, Event::Flaky { index: i as u32 });
        }

        SimState {
            jobs,
            queue,
            view: ClusterView::new(cfg.capacity),
            util: UtilizationRecorder::new(cfg.capacity),
            rescales: 0,
            cancelled_count: 0,
            peak_queue_len: 0,
            peak_queue_len_raw: 0,
            fault_stats: FaultStats::default(),
            resilience: ResilienceState::new(&workload.faults.flaky),
            launcher,
            timer_interval,
            events_processed: 0,
        }
    }

    /// Pending events (including stale completions awaiting compaction).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Events popped so far across all [`SimState::step`] calls.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn apply_all(&mut self, cfg: &SimConfig, fspec: &FaultSpec, actions: &[Action], now: SimTime) {
        for a in actions {
            apply_action(&mut self.view, a, now, self.launcher);
            apply_runtime(
                cfg,
                fspec,
                &mut self.jobs,
                &mut self.queue,
                &mut self.util,
                &mut self.rescales,
                &mut self.cancelled_count,
                &mut self.fault_stats,
                a,
                now,
            );
        }
    }

    /// Deterministic victim selection for a transient fault: the
    /// *oldest* executor (lowest running [`JobId`]) for launch
    /// failures, stuck rescales and heartbeat misses; the *youngest*
    /// (highest running id) for crash-on-start — the job most recently
    /// through the launch path. Identical in the operator, which scans
    /// its store over the same admission-ordered ids.
    fn flaky_victim(&self, op: FlakyOp) -> Option<JobId> {
        let mut running = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.running)
            .map(|(i, _)| JobId::from_index(i));
        match op {
            FlakyOp::CrashOnStart => running.next_back(),
            FlakyOp::LaunchFail | FlakyOp::StuckRescale | FlakyOp::HeartbeatMiss => running.next(),
        }
    }

    /// Per-event post-processing bookkeeping: sample the queue
    /// high-water mark and re-bucketize away stale entries when the
    /// compaction threshold trips.
    fn after_event(&mut self) {
        self.peak_queue_len = self.peak_queue_len.max(self.queue.live_len());
        self.peak_queue_len_raw = self.peak_queue_len_raw.max(self.queue.len());
        if self.queue.should_compact() {
            let jobs = &self.jobs;
            self.queue.compact(|e| match e {
                Event::Completion { job, generation } => {
                    let j = &jobs[job.index()];
                    !j.completed && !j.cancelled && j.generation == *generation
                }
                Event::Requeue { job } => {
                    let j = &jobs[job.index()];
                    !j.completed && !j.cancelled && !j.failed
                }
                _ => true,
            });
        }
    }

    /// Pops and processes at most `max_events` events; returns `true`
    /// while events remain afterwards. `step(cfg, wl, usize::MAX)`
    /// drains the run in one call; the federation scheduler passes its
    /// quantum and re-queues the shard while this returns `true`.
    ///
    /// Submission and completion events route through the batched
    /// policy surface ([`SubmitBurst`] / [`CompleteBurst`]): every
    /// event at one instant of one kind is decided in a single policy
    /// invocation, with the per-event primitive sequence (consume →
    /// staleness check → runtime effects → decide → apply → peak
    /// sample → compaction check) driven from inside the burst — so
    /// replay output and the quantum-stepping contract are identical to
    /// the historical one-event-one-call loop.
    pub fn step(&mut self, cfg: &SimConfig, workload: &WorkloadSpec, max_events: usize) -> bool {
        debug_assert_eq!(
            self.jobs.len(),
            workload.jobs.len(),
            "step must receive the workload the state was built from"
        );
        let mut popped = 0usize;
        while popped < max_events {
            let Some((now, event)) = self.queue.pop() else {
                return false;
            };
            popped += 1;
            self.events_processed += 1;
            match event {
                Event::Submit { first, count } => {
                    // One pop admits the whole same-timestamp burst;
                    // the driver interns each job in submission order
                    // and the policy answers per admission, so
                    // decisions are identical to n singleton events.
                    let mut burst = SubmitDriver {
                        state: self,
                        cfg,
                        fspec: &workload.faults,
                        now,
                        next: first.index(),
                        end: first.index() + count as usize,
                        fresh: true,
                    };
                    cfg.policy.on_submit_burst(&mut burst);
                    self.after_event();
                }
                Event::Requeue { job } => {
                    let idx = job.index();
                    if self.jobs[idx].completed || self.jobs[idx].cancelled || self.jobs[idx].failed
                    {
                        continue; // cancelled while waiting out the backoff
                    }
                    // A requeue re-admission is a one-job burst that
                    // keeps the original submission instant.
                    let mut burst = SubmitDriver {
                        state: self,
                        cfg,
                        fspec: &workload.faults,
                        now,
                        next: idx,
                        end: idx + 1,
                        fresh: false,
                    };
                    cfg.policy.on_submit_burst(&mut burst);
                    self.after_event();
                }
                Event::Completion { job, generation } => {
                    // The driver consumes every consecutive completion
                    // at this instant (budget permitting), doing the
                    // per-event bookkeeping itself; stale entries are
                    // skipped at consumption time exactly like the
                    // historical loop's `continue`.
                    let flush = {
                        let mut burst = CompleteDriver {
                            state: self,
                            cfg,
                            workload,
                            now,
                            pending: Some((job, generation)),
                            popped: &mut popped,
                            max_events,
                            book_pending: false,
                        };
                        cfg.policy.on_complete_burst(&mut burst);
                        burst.book_pending
                    };
                    if flush {
                        // Defensive: a policy that skipped the final
                        // `apply` still owes the event its bookkeeping.
                        self.after_event();
                    }
                }
                other => {
                    // An event retired early (terminal-state no-op)
                    // skips the bookkeeping, exactly like the
                    // historical loop's `continue`.
                    if !self.process_event(cfg, workload, now, other) {
                        continue;
                    }
                    self.after_event();
                }
            }
        }
        !self.queue.is_empty()
    }

    /// Processes one event; `false` means it was retired early (the
    /// post-event bookkeeping must be skipped).
    fn process_event(
        &mut self,
        cfg: &SimConfig,
        workload: &WorkloadSpec,
        now: SimTime,
        event: Event,
    ) -> bool {
        match event {
            Event::Submit { .. } | Event::Completion { .. } | Event::Requeue { .. } => {
                unreachable!("submit/completion/requeue events route through the burst drivers")
            }
            Event::Cancel { job } => {
                let idx = job.index();
                if self.jobs[idx].completed
                    || self.jobs[idx].cancelled
                    || self.jobs[idx].failed
                    || !self.jobs[idx].submitted
                {
                    // Terminal already, or a cancel timed before the
                    // job's arrival — a no-op, exactly like the client
                    // cancel of an unknown name in the operator path.
                    return false;
                }
                let held_slots = self.jobs[idx].running;
                let cancel = Action::Cancel { job };
                // A job waiting out a requeue backoff is alive but not
                // in the view; the runtime cancel alone retires it.
                if self.view.job(job).is_some() {
                    apply_action(&mut self.view, &cancel, now, self.launcher);
                }
                apply_runtime(
                    cfg,
                    &workload.faults,
                    &mut self.jobs,
                    &mut self.queue,
                    &mut self.util,
                    &mut self.rescales,
                    &mut self.cancelled_count,
                    &mut self.fault_stats,
                    &cancel,
                    now,
                );
                if held_slots {
                    // Freed capacity: the policy redistributes exactly
                    // as after a completion.
                    let actions = cfg.policy.on_complete(&self.view, now);
                    self.apply_all(cfg, &workload.faults, &actions, now);
                }
            }
            Event::NodeFail { slots } | Event::CapacityReclaim { slots } => {
                // Capacity loss: mark the slots failed (opening a
                // deficit when they were occupied), let the policy
                // answer through on_fault, and insist the plan covers
                // the deficit before the usual redistribution pass.
                self.view.fail_slots(slots);
                let kind = if matches!(event, Event::NodeFail { .. }) {
                    FaultKind::NodeFail
                } else {
                    FaultKind::Reclaim
                };
                let fault = FaultEvent {
                    at: Duration::from_secs(now.as_secs()),
                    slots,
                    kind,
                };
                let actions = cfg.policy.on_fault(&self.view, &fault, now);
                self.apply_all(cfg, &workload.faults, &actions, now);
                assert_eq!(
                    self.view.deficit(),
                    0,
                    "policy {} left a fault deficit uncovered",
                    cfg.policy.name()
                );
                let actions = cfg.policy.on_complete(&self.view, now);
                self.apply_all(cfg, &workload.faults, &actions, now);
            }
            Event::CapacityReturn { slots } => {
                // Reclaimed capacity comes back: restore it to the free
                // pool and let the policy expand or admit into it.
                self.view.restore_slots(slots);
                let actions = cfg.policy.on_complete(&self.view, now);
                self.apply_all(cfg, &workload.faults, &actions, now);
            }
            Event::Flaky { index } => {
                let op = workload.faults.flaky.events[index as usize].op;
                let victim = self.flaky_victim(op);
                match self.resilience.on_flaky(op, victim, now) {
                    // No running victim, a sub-threshold heartbeat
                    // miss, or an open breaker fast-failing the
                    // operation: nothing happens to any job.
                    FlakyOutcome::Observed | FlakyOutcome::Absorbed => {}
                    FlakyOutcome::Retry => {
                        let job = victim.expect("retry outcome implies a victim");
                        self.apply_all(cfg, &workload.faults, &[Action::Requeue { job }], now);
                        let actions = cfg.policy.on_complete(&self.view, now);
                        self.apply_all(cfg, &workload.faults, &actions, now);
                    }
                    FlakyOutcome::Deny => {
                        // Retry budget dry: the victim fails
                        // permanently. Forcing the attempt counter to
                        // the retry ceiling routes the failure through
                        // the same requeue path as every other
                        // permanent failure — identically in both
                        // engines.
                        let job = victim.expect("deny outcome implies a victim");
                        let j = &mut self.jobs[job.index()];
                        j.attempts = j
                            .attempts
                            .max(workload.faults.max_attempts.saturating_sub(1));
                        self.apply_all(cfg, &workload.faults, &[Action::Requeue { job }], now);
                        let actions = cfg.policy.on_complete(&self.view, now);
                        self.apply_all(cfg, &workload.faults, &actions, now);
                    }
                    FlakyOutcome::Evict => {
                        let job = victim.expect("evict outcome implies a victim");
                        self.apply_all(cfg, &workload.faults, &[Action::Evict { job }], now);
                        let actions = cfg.policy.on_complete(&self.view, now);
                        self.apply_all(cfg, &workload.faults, &actions, now);
                    }
                }
            }
            Event::Timer => {
                // Stop the clock once every job is terminal — the run
                // is over; an armed timer must not keep it alive.
                if self
                    .jobs
                    .iter()
                    .all(|j| j.completed || j.cancelled || j.failed)
                {
                    return false;
                }
                let actions = cfg.policy.on_timer(&self.view, now);
                self.apply_all(cfg, &workload.faults, &actions, now);
                // Re-arm only while some *other* event is pending: a
                // policy is a pure function of the view, so with no
                // submissions/completions/cancellations left, every
                // future firing would see the same view and decide the
                // same nothing — re-arming would hang the simulation
                // forever on a permanently starved job instead of
                // letting it reach the diagnostic starvation assert.
                if !self.queue.is_empty() {
                    let iv = self
                        .timer_interval
                        .expect("timer event implies an interval");
                    self.queue.push(now + iv, Event::Timer);
                }
            }
        }
        true
    }

    /// Consumes the drained state into a [`SimOutcome`].
    ///
    /// # Panics
    /// If events are still pending, or (diagnostically) if a job
    /// starved in the queue forever.
    pub fn finish(mut self, cfg: &SimConfig, workload: &WorkloadSpec) -> SimOutcome {
        assert!(
            self.queue.is_empty(),
            "finish called with {} events pending",
            self.queue.len()
        );
        // Bank the resilience tallies next to the capacity-fault ones;
        // the operator copies the same three counters in `metrics()`.
        self.fault_stats.transient_faults = self.resilience.transient_faults();
        self.fault_stats.retries = self.resilience.retries();
        self.fault_stats.breaker_trips = self.resilience.breaker_trips();
        // Starvation first: it is the *cause* of a non-drained view, so
        // it must own the diagnostic (the drain assert below would
        // otherwise mask it in debug builds).
        for j in &self.jobs {
            assert!(
                j.completed || j.cancelled || j.failed,
                "job {} never completed (starved in queue)",
                j.spec.name
            );
        }

        debug_assert!(
            self.view.is_empty()
                && self.view.deficit() == 0
                && self.view.free_slots() + self.view.failed_slots() == cfg.capacity,
            "incremental view must drain to empty (minus still-failed slots) \
             when every job is terminal"
        );

        let outcomes: Vec<JobOutcome> = self
            .jobs
            .iter()
            .filter(|j| j.completed)
            .map(|j| JobOutcome {
                name: j.spec.name.clone(),
                priority: j.spec.priority,
                submitted_at: j.submitted_at,
                started_at: j.started_at.expect("started"),
                completed_at: j.completed_at.expect("completed"),
            })
            .collect();
        let metrics = if outcomes.is_empty() {
            // Every job was cancelled: nothing completed, nothing to
            // aggregate.
            RunMetrics::empty(cfg.policy.name(), self.rescales).with_fault_stats(self.fault_stats)
        } else {
            let first_submit = outcomes.iter().map(|o| o.submitted_at).min().expect("jobs");
            let last_complete = outcomes.iter().map(|o| o.completed_at).max().expect("jobs");
            let utilization = self.util.average_utilization(first_submit, last_complete);
            RunMetrics::from_outcomes(cfg.policy.name(), outcomes, utilization, self.rescales)
                .with_fault_stats(self.fault_stats)
        };
        SimOutcome {
            metrics,
            util: self.util,
            rescales: self.rescales,
            cancelled: self.cancelled_count,
            names: workload.jobs.iter().map(|j| j.name.clone()).collect(),
            peak_queue_len: self.peak_queue_len,
            peak_queue_len_raw: self.peak_queue_len_raw,
        }
    }
}

/// Engine side of a same-instant submission burst (one coalesced
/// `Submit` event, or a single `Requeue` re-admission): interns jobs
/// `next..end` one at a time as the policy pulls them, applies each
/// answer through the shared action path.
struct SubmitDriver<'a> {
    state: &'a mut SimState,
    cfg: &'a SimConfig,
    fspec: &'a FaultSpec,
    now: SimTime,
    next: usize,
    end: usize,
    /// `true` for fresh submissions (stamp `submitted`/`submitted_at`);
    /// `false` for a requeue re-admission, which keeps its original
    /// submission instant.
    fresh: bool,
}

impl SubmitBurst for SubmitDriver<'_> {
    fn view(&self) -> &ClusterView {
        &self.state.view
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn admit_next(&mut self) -> Option<JobId> {
        if self.next >= self.end {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        let id = JobId::from_index(idx);
        if self.fresh {
            self.state.jobs[idx].submitted = true;
            self.state.jobs[idx].submitted_at = self.now;
        }
        self.state.jobs[idx].last_update = self.now;
        self.state
            .view
            .insert(self.state.jobs[idx].view_state(id), self.state.launcher);
        Some(id)
    }

    fn apply(&mut self, actions: &[Action]) {
        self.state
            .apply_all(self.cfg, self.fspec, actions, self.now);
    }
}

/// Engine side of a same-instant completion burst. `retire_next`
/// consumes the pre-popped head completion first, then keeps consuming
/// *consecutive* completion events at the same timestamp straight off
/// the queue (respecting the caller's event budget); stale entries are
/// skipped at consumption time. `apply` runs the action path and the
/// per-event bookkeeping (peak sample + compaction check), preserving
/// the exact primitive sequence of the historical per-event loop.
struct CompleteDriver<'a> {
    state: &'a mut SimState,
    cfg: &'a SimConfig,
    workload: &'a WorkloadSpec,
    now: SimTime,
    /// The completion popped by the outer `step` loop, consumed on the
    /// first `retire_next`.
    pending: Option<(JobId, u64)>,
    /// The outer loop's pop counter — extra events this driver consumes
    /// count against the same `max_events` budget.
    popped: &'a mut usize,
    max_events: usize,
    /// A retirement has been returned but its post-apply bookkeeping
    /// has not run yet.
    book_pending: bool,
}

impl CompleteDriver<'_> {
    fn book(&mut self) {
        self.book_pending = false;
        self.state.after_event();
    }
}

impl CompleteBurst for CompleteDriver<'_> {
    fn view(&self) -> &ClusterView {
        &self.state.view
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn retire_next(&mut self) -> bool {
        if self.book_pending {
            // Defensive: the policy pulled again without applying; the
            // previous event still gets its bookkeeping.
            self.book();
        }
        loop {
            let (job, generation) = match self.pending.take() {
                Some(p) => p,
                None => {
                    if *self.popped >= self.max_events {
                        return false;
                    }
                    let next_is_batch = matches!(
                        self.state.queue.peek(),
                        Some((t, Event::Completion { .. })) if t == self.now
                    );
                    if !next_is_batch {
                        return false;
                    }
                    let Some((_, Event::Completion { job, generation })) = self.state.queue.pop()
                    else {
                        unreachable!("peek promised a completion")
                    };
                    *self.popped += 1;
                    self.state.events_processed += 1;
                    (job, generation)
                }
            };
            let idx = job.index();
            if self.state.jobs[idx].generation != generation
                || self.state.jobs[idx].completed
                || self.state.jobs[idx].cancelled
            {
                // Stale: the job was rescaled or cancelled meanwhile.
                // Consumed with no bookkeeping, exactly like the
                // historical loop's `continue`.
                self.state.queue.note_stale_popped();
                continue;
            }
            self.state.jobs[idx].advance(self.now, &self.cfg.scaling);
            debug_assert!(
                self.state.jobs[idx].steps_done >= self.state.jobs[idx].spec.work() - 1e-3,
                "completion fired early for {}",
                self.state.jobs[idx].spec.name
            );
            self.state.jobs[idx].completed = true;
            self.state.jobs[idx].running = false;
            self.state.jobs[idx].completed_at = Some(self.now);
            self.state.util.set(self.now, job, 0);
            self.state.view.remove(job, self.state.launcher);
            // A successful retirement feeds the resilience layer
            // (breaker reset, budget deposit, health forgiveness) at
            // the same boundary the operator's complete_job uses.
            if !self.workload.faults.flaky.is_empty() {
                self.state.resilience.on_success(job, self.now);
            }
            self.book_pending = true;
            return true;
        }
    }

    fn apply(&mut self, actions: &[Action]) {
        self.state
            .apply_all(self.cfg, &self.workload.faults, actions, self.now);
        self.book();
    }
}

/// Runs one simulation to completion, replaying the workload's own
/// arrival (and cancellation) times. Equivalent to draining a
/// [`SimState`] in a single unbounded step.
pub fn simulate(cfg: &SimConfig, workload: &WorkloadSpec) -> SimOutcome {
    let mut state = SimState::new(cfg, workload);
    while state.step(cfg, workload, usize::MAX) {}
    state.finish(cfg, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SizeClass;
    use crate::workload::generate_workload;
    use elastic_core::{AgingSweep, FcfsBackfill, Policy, PolicyConfig, PolicyKind};

    fn policy(kind: PolicyKind, gap: f64) -> Box<dyn SchedulingPolicy> {
        Box::new(Policy::of_kind(
            kind,
            PolicyConfig {
                rescale_gap: Duration::from_secs(gap),
                launcher_slots: 1,
                shrink_spares_head: true,
            },
        ))
    }

    fn spaced(wl: WorkloadSpec, gap_s: f64) -> WorkloadSpec {
        wl.spaced_every(Duration::from_secs(gap_s))
    }

    fn one_job(class: SizeClass) -> WorkloadSpec {
        WorkloadSpec::new(vec![JobSpec::of_class("j0", class, 3)])
    }

    #[test]
    fn single_job_runtime_matches_model() {
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let out = simulate(&cfg, &one_job(SizeClass::Medium));
        // Empty cluster: job runs at max replicas the whole time.
        let expect = cfg.scaling.runtime(SizeClass::Medium, 16);
        assert!(
            (out.metrics.total_time - expect).abs() < 1e-6,
            "total {} != model {expect}",
            out.metrics.total_time
        );
        assert_eq!(out.rescales, 0);
        assert_eq!(out.metrics.weighted_response, 0.0);
        assert_eq!(out.names, vec!["j0".to_string()]);
    }

    #[test]
    fn rigid_min_runs_longer_than_rigid_max_for_one_job() {
        let wl = one_job(SizeClass::Large);
        let min = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMin, 180.0)),
            &wl,
        );
        let max = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMax, 180.0)),
            &wl,
        );
        assert!(min.metrics.total_time > max.metrics.total_time);
    }

    #[test]
    fn simulation_is_deterministic() {
        let wl = spaced(generate_workload(11, 16), 90.0);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let a = simulate(&cfg, &wl);
        let b = simulate(&cfg, &wl);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.rescales, b.rescales);
    }

    #[test]
    fn zero_gap_coalesced_burst_matches_singleton_semantics() {
        // All 8 jobs submitted at t=0 through ONE coalesced Submit
        // event: decisions must equal the historical one-event-per-job
        // behaviour (each job decided with only its predecessors in
        // view), which the determinism of the metrics pins down.
        let wl = generate_workload(3, 8); // arrivals default to t = 0
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 8);
        // Every job shares the submission instant.
        assert!(out
            .metrics
            .jobs
            .iter()
            .all(|j| j.submitted_at == SimTime::ZERO));
        // Deterministic across runs.
        let again = simulate(&cfg, &wl);
        assert_eq!(out.metrics, again.metrics);
    }

    #[test]
    fn elastic_rescales_under_contention() {
        let wl = spaced(generate_workload(3, 16), 30.0); // heavy traffic
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let out = simulate(&cfg, &wl);
        assert!(out.rescales > 0, "elastic never rescaled under load");
        // Non-elastic policies never rescale.
        for kind in [
            PolicyKind::Moldable,
            PolicyKind::RigidMin,
            PolicyKind::RigidMax,
        ] {
            let out = simulate(&SimConfig::paper_default(policy(kind, 180.0)), &wl);
            assert_eq!(out.rescales, 0, "{kind} rescaled");
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        for seed in 0..5 {
            let wl = spaced(generate_workload(seed, 16), 20.0);
            for kind in PolicyKind::ALL {
                let cfg = SimConfig::paper_default(policy(kind, 60.0));
                let out = simulate(&cfg, &wl);
                // Worker slots alone must fit under capacity minus one
                // launcher per concurrently running job (>= 1).
                assert!(
                    out.util.peak() <= 64,
                    "{kind} seed {seed}: peak worker slots {}",
                    out.util.peak()
                );
            }
        }
    }

    #[test]
    fn utilization_in_unit_range_and_meaningful() {
        let wl = spaced(generate_workload(9, 16), 90.0);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let out = simulate(&cfg, &wl);
        assert!(out.metrics.utilization > 0.3);
        assert!(out.metrics.utilization <= 1.0);
    }

    #[test]
    fn fcfs_backfill_runs_through_the_simulator() {
        // Heavy traffic: the queue blocks.
        let wl = spaced(generate_workload(11, 16), 30.0);
        let cfg = SimConfig::paper_default(Box::new(FcfsBackfill::new()));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.policy, "fcfs_backfill");
        assert_eq!(out.metrics.jobs.len(), 16);
        assert_eq!(out.rescales, 0, "FCFS never rescales");
        assert!(out.metrics.utilization > 0.2 && out.metrics.utilization <= 1.0);
        // Determinism holds for the new policy too.
        let cfg2 = SimConfig::paper_default(Box::new(FcfsBackfill::new()));
        assert_eq!(simulate(&cfg2, &wl).metrics, out.metrics);
    }

    #[test]
    fn cancellation_frees_slots_the_policy_reassigns() {
        // Three Large jobs on 64 slots: "a" takes 32+1, "b" 30+1, "c"
        // finds the cluster full and queues. Cancelling "a" mid-run
        // must make elastic reassign the freed slots *at the cancel
        // timestamp*: "b" expands and "c" starts immediately.
        let wl = WorkloadSpec::new(vec![
            JobSpec::of_class("a", SizeClass::Large, 3),
            JobSpec::of_class("b", SizeClass::Large, 3),
            JobSpec::of_class("c", SizeClass::Large, 3),
        ]);
        let mut cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 10.0));
        cfg.cancellations = vec![(Duration::from_secs(100.0), "a".into())];
        let out = simulate(&cfg, &wl);
        assert_eq!(out.cancelled, 1);
        assert_eq!(out.metrics.jobs.len(), 2, "victim excluded from outcomes");
        assert!(out.metrics.jobs.iter().all(|j| j.name != "a"));
        let c = out.metrics.jobs.iter().find(|j| j.name == "c").unwrap();
        assert_eq!(
            c.started_at,
            SimTime::from_secs(100.0),
            "queued job must start the instant the cancellation frees slots"
        );
        assert!(out.rescales >= 1, "survivor should expand into the hole");
    }

    #[test]
    fn all_jobs_cancelled_yields_empty_metrics_without_panicking() {
        let wl = WorkloadSpec::new(vec![JobSpec::of_class("solo", SizeClass::Large, 3)]);
        let mut cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        cfg.cancellations = vec![(Duration::from_secs(50.0), "solo".into())];
        let out = simulate(&cfg, &wl);
        assert_eq!(out.cancelled, 1);
        assert!(out.metrics.jobs.is_empty());
        assert_eq!(out.metrics.policy, "elastic");
        assert_eq!(out.metrics.total_time, 0.0);
    }

    #[test]
    fn cancel_of_queued_job_just_removes_it() {
        let wl = spaced(generate_workload(5, 6), 10.0);
        // Cancel the last job the moment it sits in the queue under
        // heavy traffic (it is submitted at 5 * 10 = 50s).
        let victim = wl.jobs[5].name.clone();
        let mut cfg = SimConfig::paper_default(policy(PolicyKind::RigidMax, 180.0));
        cfg.cancellations = vec![(Duration::from_secs(55.0), victim)];
        let out = simulate(&cfg, &wl);
        assert!(out.cancelled <= 1, "at most the one requested cancel");
        assert_eq!(out.metrics.jobs.len() + out.cancelled as usize, 6);
    }

    #[test]
    fn response_times_nonnegative_and_ordered_sanely() {
        let wl = spaced(generate_workload(21, 16), 90.0);
        let min = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMin, 180.0)),
            &wl,
        );
        for j in &min.metrics.jobs {
            assert!(j.started_at >= j.submitted_at);
            assert!(j.completed_at >= j.started_at);
        }
        // min_replicas leaves more slack => its weighted response should
        // be no worse than rigid-max's (paper Fig. 7c).
        let max = simulate(
            &SimConfig::paper_default(policy(PolicyKind::RigidMax, 180.0)),
            &wl,
        );
        assert!(
            min.metrics.weighted_response <= max.metrics.weighted_response + 1e-9,
            "min {} > max {}",
            min.metrics.weighted_response,
            max.metrics.weighted_response
        );
    }

    #[test]
    fn per_job_arrival_times_drive_submission() {
        // Trace-shaped arrivals: a burst of two at t=0, one at t=7.5,
        // one at t=7.5 (coalesced burst), one late at t=1000.
        let arrivals = [0.0, 0.0, 7.5, 7.5, 1000.0];
        let wl = WorkloadSpec::new(
            arrivals
                .iter()
                .enumerate()
                .map(|(i, &at)| {
                    JobSpec::of_class(format!("t{i}"), SizeClass::Small, 3)
                        .at(Duration::from_secs(at))
                })
                .collect(),
        );
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 5);
        for (j, &at) in out.metrics.jobs.iter().zip(&arrivals) {
            assert_eq!(
                j.submitted_at,
                SimTime::from_secs(at),
                "{} submitted at the workload's arrival time",
                j.name
            );
        }
        // Small jobs at 64 slots: the empty cluster at t=1000 starts the
        // straggler immediately.
        let late = &out.metrics.jobs[4];
        assert_eq!(late.started_at, SimTime::from_secs(1000.0));
    }

    #[test]
    fn workload_cancel_at_tears_the_job_down() {
        let wl = WorkloadSpec::new(vec![
            JobSpec::of_class("keep", SizeClass::Large, 3),
            JobSpec::of_class("drop", SizeClass::Large, 3).cancelled_at(Duration::from_secs(80.0)),
        ]);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 10.0));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.cancelled, 1);
        assert_eq!(out.metrics.jobs.len(), 1);
        assert_eq!(out.metrics.jobs[0].name, "keep");
    }

    #[test]
    fn malleable_jobs_run_at_linear_speed() {
        // 1200 core-seconds on exactly 4 replicas (rigid annotation):
        // 300 s of runtime, bit-exact.
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("m0", 4, 4, 1200.0, 1)]);
        let cfg = SimConfig::paper_default(Box::new(FcfsBackfill::new()));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 1);
        assert_eq!(out.metrics.total_time, 300.0);
        assert_eq!(out.metrics.mean_bounded_slowdown, 1.0);
    }

    #[test]
    fn elastic_policy_rescales_malleable_trace_jobs() {
        // Two malleable jobs whose max bounds exceed the cluster: the
        // first grabs everything, the second forces a shrink, and when
        // one completes the survivor expands — exercising the
        // job_total overhead path for class-less jobs.
        // "head" (16+1) and "bulk" (46+1) fill all 64 slots; "late"
        // needs 8+1, so the policy must shrink "bulk" (the head is
        // spared) to admit it, and expands survivors on completions.
        let wl = WorkloadSpec::new(vec![
            JobSpec::malleable("head", 8, 16, 16_000.0, 5),
            JobSpec::malleable("bulk", 8, 56, 48_000.0, 1),
            JobSpec::malleable("late", 8, 56, 48_000.0, 3).at(Duration::from_secs(100.0)),
        ]);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 10.0));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 3);
        assert!(out.rescales >= 2, "expected shrink + expand rescales");
        assert!(out.metrics.mean_bounded_slowdown >= 1.0);
    }

    #[test]
    #[should_panic(expected = "never completed")]
    fn timer_policy_cannot_keep_a_starved_run_alive_forever() {
        // A job whose minimum footprint can never fit stays queued for
        // good. With a timer-driven policy the engine must still
        // terminate (the timer only re-arms while other events are
        // pending) and reach the diagnostic starvation assert instead
        // of spinning on timer firings against a frozen view.
        let wl = WorkloadSpec::new(vec![
            JobSpec::malleable("ok", 2, 4, 100.0, 3),
            JobSpec::malleable("impossible", 128, 128, 100.0, 1).at(Duration::from_secs(1.0)),
        ]);
        let policy = AgingSweep::new(
            Box::new(FcfsBackfill::new()),
            Duration::from_secs(50.0),
            Duration::from_secs(30.0),
        );
        let cfg = SimConfig::paper_default(Box::new(policy));
        let _ = simulate(&cfg, &wl);
    }

    #[test]
    fn quantum_stepping_is_bit_identical_to_monolithic_drain() {
        // The federation scheduler drains shards a few events at a
        // time; any quantum size must reproduce the monolithic run
        // exactly — metrics, rescales, peaks, everything.
        let wl = spaced(generate_workload(11, 16), 30.0);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 60.0));
        let whole = simulate(&cfg, &wl);
        for quantum in [1usize, 3, 7, 64] {
            let cfg_q = SimConfig::paper_default(policy(PolicyKind::Elastic, 60.0));
            let mut st = SimState::new(&cfg_q, &wl);
            let mut turns = 0u32;
            while st.step(&cfg_q, &wl, quantum) {
                turns += 1;
            }
            let out = st.finish(&cfg_q, &wl);
            assert_eq!(out.metrics, whole.metrics, "quantum {quantum} diverged");
            assert_eq!(out.rescales, whole.rescales);
            assert_eq!(out.peak_queue_len, whole.peak_queue_len);
            assert_eq!(out.peak_queue_len_raw, whole.peak_queue_len_raw);
            assert_eq!(out.cancelled, whole.cancelled);
            assert!(quantum >= 64 || turns > 1, "tiny quantum must yield");
        }
    }

    #[test]
    fn sim_state_exposes_progress_counters() {
        let wl = one_job(SizeClass::Small);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let mut st = SimState::new(&cfg, &wl);
        assert_eq!(st.pending_events(), 1, "one coalesced submit seeded");
        assert_eq!(st.events_processed(), 0);
        let more = st.step(&cfg, &wl, 1);
        assert!(more, "completion still pending");
        assert_eq!(st.events_processed(), 1);
        while st.step(&cfg, &wl, 1) {}
        assert_eq!(st.pending_events(), 0);
        let out = st.finish(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 1);
    }

    #[test]
    fn empty_fault_spec_changes_nothing() {
        let wl = spaced(generate_workload(11, 16), 90.0);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 180.0));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.faults, elastic_core::FaultStats::default());
    }

    fn recovery(strategy: elastic_core::RecoveryStrategy) -> Box<dyn SchedulingPolicy> {
        Box::new(elastic_core::RecoveryPolicy::new(
            policy(PolicyKind::Elastic, 10.0),
            strategy,
        ))
    }

    /// One malleable job holding most of the cluster, then a reclaim
    /// bites into its allocation and later returns.
    fn reclaim_workload() -> WorkloadSpec {
        use crate::workload::{FaultEvent, FaultKind, FaultSpec};
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("big", 8, 56, 100_000.0, 3)]);
        wl.with_faults(FaultSpec::new(vec![
            FaultEvent {
                at: Duration::from_secs(500.0),
                slots: 40,
                kind: FaultKind::Reclaim,
            },
            FaultEvent {
                at: Duration::from_secs(900.0),
                slots: 40,
                kind: FaultKind::Return,
            },
        ]))
    }

    #[test]
    fn shrink_on_reclaim_loses_no_work() {
        let cfg =
            SimConfig::paper_default(recovery(elastic_core::RecoveryStrategy::ShrinkOnReclaim));
        let out = simulate(&cfg, &reclaim_workload());
        assert_eq!(out.metrics.jobs.len(), 1);
        let f = out.metrics.faults;
        assert_eq!((f.evictions, f.requeues, f.permanent_failures), (0, 0, 0));
        assert_eq!(f.wasted_core_seconds, 0.0, "shrinking wastes nothing");
        assert!(out.rescales >= 2, "shrink on reclaim, expand on return");
    }

    #[test]
    fn checkpoint_restart_rolls_back_to_the_boundary() {
        let cfg =
            SimConfig::paper_default(recovery(elastic_core::RecoveryStrategy::CheckpointRestart));
        let wl = reclaim_workload();
        // Default checkpoint interval 300 s; reclaim at 500 s => the
        // 200 s tail past the 300 s checkpoint is wasted on all 56
        // replicas the job held.
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 1);
        let f = out.metrics.faults;
        assert_eq!(f.evictions, 1);
        assert_eq!(f.requeues, 0);
        assert!(
            (f.wasted_core_seconds - 56.0 * 200.0).abs() < 1e-6,
            "wasted {} != 56 replicas x 200 s rollback",
            f.wasted_core_seconds
        );
    }

    #[test]
    fn kill_requeue_wastes_the_whole_attempt_and_backs_off() {
        let cfg = SimConfig::paper_default(recovery(elastic_core::RecoveryStrategy::KillRequeue));
        let out = simulate(&cfg, &reclaim_workload());
        assert_eq!(out.metrics.jobs.len(), 1, "retry succeeds within budget");
        let f = out.metrics.faults;
        assert_eq!(f.requeues, 1);
        assert_eq!(f.evictions, 0);
        assert_eq!(f.permanent_failures, 0);
        assert!(
            (f.wasted_core_seconds - 56.0 * 500.0).abs() < 1e-6,
            "wasted {} != the whole 500 s x 56-replica attempt",
            f.wasted_core_seconds
        );
        // The requeued job restarts from zero after the 30 s backoff.
        let j = &out.metrics.jobs[0];
        assert!(j.started_at >= SimTime::from_secs(530.0));
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job_permanently() {
        use crate::workload::{FaultEvent, FaultKind, FaultSpec};
        // Three reclaims, each timed to catch the job's retry (backoffs
        // 30/60 s), against a budget of 3 attempts: the third kill is
        // permanent and the run still terminates cleanly.
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("doomed", 8, 56, 1e9, 3)]);
        let mut spec = FaultSpec::new(vec![
            FaultEvent {
                at: Duration::from_secs(100.0),
                slots: 60,
                kind: FaultKind::Reclaim,
            },
            FaultEvent {
                at: Duration::from_secs(200.0),
                slots: 60,
                kind: FaultKind::Reclaim,
            },
            FaultEvent {
                at: Duration::from_secs(150.0),
                slots: 60,
                kind: FaultKind::Return,
            },
            FaultEvent {
                at: Duration::from_secs(250.0),
                slots: 60,
                kind: FaultKind::Return,
            },
            FaultEvent {
                at: Duration::from_secs(300.0),
                slots: 60,
                kind: FaultKind::Reclaim,
            },
            FaultEvent {
                at: Duration::from_secs(350.0),
                slots: 60,
                kind: FaultKind::Return,
            },
        ]);
        spec.events.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap());
        let wl = wl.with_faults(spec);
        let cfg = SimConfig::paper_default(recovery(elastic_core::RecoveryStrategy::KillRequeue));
        let out = simulate(&cfg, &wl);
        let f = out.metrics.faults;
        assert_eq!(f.requeues, 3);
        assert_eq!(f.permanent_failures, 1);
        assert!(out.metrics.jobs.is_empty(), "the job never completed");
        assert!(f.wasted_core_seconds > 0.0);
    }

    #[test]
    fn cancel_during_requeue_backoff_retires_the_job() {
        use crate::workload::{FaultEvent, FaultKind, FaultSpec};
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("victim", 8, 56, 1e9, 3)]);
        let wl = wl.with_faults(FaultSpec::new(vec![
            FaultEvent {
                at: Duration::from_secs(100.0),
                slots: 60,
                kind: FaultKind::Reclaim,
            },
            FaultEvent {
                at: Duration::from_secs(110.0),
                slots: 60,
                kind: FaultKind::Return,
            },
        ]));
        let mut cfg =
            SimConfig::paper_default(recovery(elastic_core::RecoveryStrategy::KillRequeue));
        // The kill lands at t=100, backoff expires at t=130; cancel in
        // between, while the job is alive but absent from the view.
        cfg.cancellations = vec![(Duration::from_secs(115.0), "victim".into())];
        let out = simulate(&cfg, &wl);
        assert_eq!(out.cancelled, 1);
        assert_eq!(out.metrics.faults.requeues, 1);
        assert_eq!(out.metrics.faults.permanent_failures, 0);
        assert!(out.metrics.jobs.is_empty());
    }

    #[test]
    fn node_failure_capacity_never_comes_back() {
        use crate::workload::{FaultEvent, FaultKind, FaultSpec};
        // 40 slots die for good; the survivor finishes on what's left.
        let wl = WorkloadSpec::new(vec![JobSpec::malleable("j", 8, 56, 50_000.0, 3)]);
        let wl = wl.with_faults(FaultSpec::new(vec![FaultEvent {
            at: Duration::from_secs(200.0),
            slots: 40,
            kind: FaultKind::NodeFail,
        }]));
        let cfg =
            SimConfig::paper_default(recovery(elastic_core::RecoveryStrategy::ShrinkOnReclaim));
        let out = simulate(&cfg, &wl);
        assert_eq!(out.metrics.jobs.len(), 1);
        // After the failure at most 24 slots exist; the job must have
        // shrunk below its original 56 workers.
        assert!(out.rescales >= 1);
        assert!(out.util.peak() <= 64);
    }

    #[test]
    fn queue_stays_bounded_under_rescale_heavy_load() {
        // A tiny rescale gap under heavy traffic makes elastic rescale
        // aggressively; every rescale strands a stale completion in the
        // heap. Compaction must keep the queue O(live jobs) instead of
        // O(submits + rescales).
        let n = 64usize;
        let wl = spaced(generate_workload(1, n), 15.0);
        let cfg = SimConfig::paper_default(policy(PolicyKind::Elastic, 10.0));
        let out = simulate(&cfg, &wl);
        assert!(
            out.rescales as usize > n,
            "scenario must be rescale-heavy (got {} rescales)",
            out.rescales
        );
        // Without compaction the raw peak would be >= initial submits
        // plus every stale completion (n + rescales). With it, the
        // queue never *stores* more than the pending submits + live
        // completions + the <=50% stale allowance — the historical
        // bound, asserted on the raw high-water mark.
        let bound = 2 * (n + 2);
        assert!(
            out.peak_queue_len_raw <= bound,
            "raw peak queue {} exceeds O(live) bound {bound} (rescales {})",
            out.peak_queue_len_raw,
            out.rescales
        );
        // The live peak counts only non-stale events: at most one
        // pending submit batch per future arrival plus one live
        // completion per running job — and never more than the raw
        // storage peak.
        assert!(out.peak_queue_len <= out.peak_queue_len_raw);
        assert!(
            out.peak_queue_len <= n + 2,
            "live peak {} exceeds live-event bound {}",
            out.peak_queue_len,
            n + 2
        );
    }
}
