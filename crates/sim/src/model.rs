//! Runtime and overhead models.
//!
//! The paper's simulator "use\[s\] strong scaling performance measurements
//! for the 4 problem sizes to model the runtime of a job for a given
//! number of replicas using a piecewise linear function", and models the
//! rescaling overhead the same way (§4.3.1). This module provides both:
//! per-class time-per-iteration curves interpolated log–log between
//! anchor points, and a four-stage (lb / checkpoint / restart / restore)
//! overhead model, with default constants calibrated so job durations
//! land in the regime of Table 1 (hundreds of seconds per job, a ~30 min
//! 16-job campaign).

use hpc_metrics::{Duration, PiecewiseLinear};
// The class definitions themselves live in the workload layer (every
// producer and consumer shares them); the *models* over those classes
// stay here with the engine.
pub use hpc_workload::{JobShape, SizeClass};

/// Memoized replica counts per class: covers every class job (spec
/// maxima top out at 64) with a few KiB; larger counts fall back to the
/// curve.
const RATE_CACHE_MAX: usize = 256;

/// Strong-scaling model: seconds per iteration as a function of replica
/// count, one curve per size class.
#[derive(Debug, Clone)]
pub struct ScalingModel {
    small: PiecewiseLinear,
    medium: PiecewiseLinear,
    large: PiecewiseLinear,
    xlarge: PiecewiseLinear,
    /// Per-class `time_per_iter` memo for replicas `1..=RATE_CACHE_MAX`
    /// (index 0 unused). The curve evaluation sits on the engine's
    /// per-event hot path — every completion and rescale re-derives a
    /// rate — and the log–log interpolation costs two `ln` + one `exp`
    /// per call; the table stores the exact same `f64`s, so replays are
    /// bit-identical with or without it.
    cache: [Vec<f64>; 4],
}

impl Default for ScalingModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl ScalingModel {
    /// The default calibration (see module docs). Anchor values mimic
    /// Fig. 4a's shapes: small problems stop scaling early
    /// (communication-bound), large ones scale near-linearly.
    pub fn paper_calibrated() -> Self {
        ScalingModel {
            small: PiecewiseLinear::log_log(vec![(2.0, 10.4e-3), (4.0, 6.5e-3), (8.0, 4.6e-3)]),
            medium: PiecewiseLinear::log_log(vec![(4.0, 13.0e-3), (8.0, 7.2e-3), (16.0, 4.2e-3)]),
            large: PiecewiseLinear::log_log(vec![(8.0, 18.2e-3), (16.0, 9.8e-3), (32.0, 5.5e-3)]),
            xlarge: PiecewiseLinear::log_log(vec![
                (16.0, 71.5e-3),
                (32.0, 39.0e-3),
                (64.0, 23.4e-3),
            ]),
            cache: Default::default(),
        }
        .warmed()
    }

    /// Builds a model from measured anchors (replicas, secs/iter) per
    /// class — the path used when calibrating from real `charm-rt` runs.
    pub fn from_anchors(
        small: Vec<(f64, f64)>,
        medium: Vec<(f64, f64)>,
        large: Vec<(f64, f64)>,
        xlarge: Vec<(f64, f64)>,
    ) -> Self {
        ScalingModel {
            small: PiecewiseLinear::log_log(small),
            medium: PiecewiseLinear::log_log(medium),
            large: PiecewiseLinear::log_log(large),
            xlarge: PiecewiseLinear::log_log(xlarge),
            cache: Default::default(),
        }
        .warmed()
    }

    /// Fills the memo table from the curves (index 0 is a `NAN` pad so
    /// replica counts index directly).
    fn warmed(mut self) -> Self {
        for (ci, class) in [
            SizeClass::Small,
            SizeClass::Medium,
            SizeClass::Large,
            SizeClass::XLarge,
        ]
        .into_iter()
        .enumerate()
        {
            self.cache[ci] = std::iter::once(f64::NAN)
                .chain((1..=RATE_CACHE_MAX).map(|r| self.curve(class).eval_clamped(r as f64, 1e-9)))
                .collect();
        }
        self
    }

    fn curve(&self, class: SizeClass) -> &PiecewiseLinear {
        match class {
            SizeClass::Small => &self.small,
            SizeClass::Medium => &self.medium,
            SizeClass::Large => &self.large,
            SizeClass::XLarge => &self.xlarge,
        }
    }

    fn class_index(class: SizeClass) -> usize {
        match class {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
            SizeClass::XLarge => 3,
        }
    }

    /// Seconds per iteration of `class` on `replicas` PEs.
    pub fn time_per_iter(&self, class: SizeClass, replicas: u32) -> f64 {
        assert!(replicas >= 1);
        if let Some(&memo) = self.cache[Self::class_index(class)].get(replicas as usize) {
            return memo;
        }
        self.curve(class).eval_clamped(f64::from(replicas), 1e-9)
    }

    /// Iteration rate (steps/second).
    pub fn rate(&self, class: SizeClass, replicas: u32) -> f64 {
        1.0 / self.time_per_iter(class, replicas)
    }

    /// Full-job runtime at a fixed replica count.
    pub fn runtime(&self, class: SizeClass, replicas: u32) -> f64 {
        class.steps() as f64 * self.time_per_iter(class, replicas)
    }

    /// Work rate of a job in its own work units per second:
    /// iterations/s off the class curve for class-shaped jobs,
    /// `replicas` core-seconds/s (linear speedup, the trace-annotation
    /// model) for malleable ones.
    pub fn job_rate(&self, shape: &JobShape, replicas: u32) -> f64 {
        match shape {
            JobShape::Class(c) => self.rate(*c, replicas),
            JobShape::Malleable { .. } => f64::from(replicas),
        }
    }
}

/// Four-stage rescale overhead model (Fig. 5's decomposition).
///
/// Models the full-restart protocol by default (paper fidelity for the
/// Fig. 7/8 sweeps). Setting [`OverheadModel::incremental`] switches to
/// the in-place protocol's cost curve: no checkpoint/restore of total
/// state, restart replaced by a fixed parallel spawn cost on expand
/// (nothing on shrink), and the LB term driven by the bytes that
/// actually change owners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Fixed restart cost (job relaunch).
    pub restart_base: f64,
    /// Restart cost per target PE (MPI startup scales with ranks).
    pub restart_per_pe: f64,
    /// In-memory checkpoint bandwidth per replica, bytes/s.
    pub ckpt_bw_per_replica: f64,
    /// Load-balance fixed cost.
    pub lb_base: f64,
    /// Load-balance cost per byte moved.
    pub lb_per_byte: f64,
    /// Model the incremental in-place protocol instead of full restart.
    pub incremental: bool,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            restart_base: 0.4,
            restart_per_pe: 0.06,
            ckpt_bw_per_replica: 5.0e8,
            lb_base: 0.1,
            lb_per_byte: 3.0e-10,
            incremental: false,
        }
    }
}

/// Overhead broken down by stage, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadBreakdown {
    /// Load-balance stage.
    pub lb: f64,
    /// Checkpoint stage.
    pub checkpoint: f64,
    /// Restart stage.
    pub restart: f64,
    /// Restore stage.
    pub restore: f64,
}

impl OverheadBreakdown {
    /// Total overhead.
    pub fn total(&self) -> f64 {
        self.lb + self.checkpoint + self.restart + self.restore
    }
}

impl OverheadModel {
    /// The default model with the incremental protocol enabled.
    pub fn incremental() -> Self {
        OverheadModel {
            incremental: true,
            ..OverheadModel::default()
        }
    }

    /// A model where every rescale and recovery costs nothing — the DES
    /// counterpart of `ModelExecutor::ideal`, for cross-engine replays
    /// that must keep all timestamps on the operator's tick grid even
    /// through checkpoint-evict relaunches.
    pub fn zero() -> Self {
        OverheadModel {
            restart_base: 0.0,
            restart_per_pe: 0.0,
            // Infinite checkpoint bandwidth: state moves for free.
            ckpt_bw_per_replica: f64::INFINITY,
            lb_base: 0.0,
            lb_per_byte: 0.0,
            incremental: false,
        }
    }

    /// Overhead of rescaling a `class` job `from → to` replicas.
    pub fn breakdown(&self, class: SizeClass, from: u32, to: u32) -> OverheadBreakdown {
        self.breakdown_bytes(class.state_bytes(), from, to)
    }

    /// Overhead of rescaling a job with `bytes` of serializable state
    /// `from → to` replicas — the shape-independent core both
    /// [`OverheadModel::breakdown`] and [`OverheadModel::job_breakdown`]
    /// reduce to.
    pub fn breakdown_bytes(&self, bytes: f64, from: u32, to: u32) -> OverheadBreakdown {
        if from == to {
            return OverheadBreakdown::default();
        }
        if self.incremental {
            return self.breakdown_bytes_incremental(bytes, from, to);
        }
        // LB moves roughly the fraction of state that changes owners.
        let moved_fraction = f64::from(from.abs_diff(to)) / f64::from(from.max(to));
        OverheadBreakdown {
            lb: self.lb_base + self.lb_per_byte * bytes * moved_fraction,
            checkpoint: bytes / (self.ckpt_bw_per_replica * f64::from(from)),
            restart: self.restart_base + self.restart_per_pe * f64::from(to),
            restore: bytes / (self.ckpt_bw_per_replica * f64::from(to)),
        }
    }

    /// The in-place protocol's curve: only the moved fraction of state
    /// pays serialization cost (as migration, charged to `lb`), expand
    /// pays one parallel worker-spawn round, shrink pays none, and the
    /// checkpoint/restore stages vanish.
    fn breakdown_bytes_incremental(&self, bytes: f64, from: u32, to: u32) -> OverheadBreakdown {
        let moved_fraction = f64::from(from.abs_diff(to)) / f64::from(from.max(to));
        let restart = if to > from {
            // Fresh workers start concurrently: one per-PE quantum, not
            // a full sequential relaunch.
            self.restart_base * 0.25 + self.restart_per_pe
        } else {
            0.0
        };
        OverheadBreakdown {
            lb: self.lb_base + self.lb_per_byte * bytes * moved_fraction,
            checkpoint: 0.0,
            restart,
            restore: 0.0,
        }
    }

    /// Overhead of rescaling a job of the given shape (class jobs use
    /// the class's grid-state bytes, malleable trace jobs the
    /// work-proportional surrogate of `JobShape::state_bytes`).
    pub fn job_breakdown(&self, shape: &JobShape, from: u32, to: u32) -> OverheadBreakdown {
        self.breakdown_bytes(shape.state_bytes(), from, to)
    }

    /// Total overhead as a [`Duration`].
    pub fn total(&self, class: SizeClass, from: u32, to: u32) -> Duration {
        Duration::from_secs(self.breakdown(class, from, to).total())
    }

    /// Total shape-dispatched overhead as a [`Duration`].
    pub fn job_total(&self, shape: &JobShape, from: u32, to: u32) -> Duration {
        Duration::from_secs(self.job_breakdown(shape, from, to).total())
    }

    /// Cost of restarting an evicted job from its last in-memory
    /// checkpoint on `to` replicas — the FullRestart recovery path of
    /// the fault layer: a full relaunch plus restoring the job's state
    /// from the checkpoint (no LB stage — placement is fresh, and no
    /// checkpoint stage — it was cut before the eviction).
    pub fn recovery_total(&self, shape: &JobShape, to: u32) -> Duration {
        assert!(to >= 1);
        let bytes = shape.state_bytes();
        let secs = self.restart_base
            + self.restart_per_pe * f64::from(to)
            + bytes / (self.ckpt_bw_per_replica * f64::from(to));
        Duration::from_secs(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parameters_match_paper() {
        assert_eq!(SizeClass::Small.replica_bounds(), (2, 8));
        assert_eq!(SizeClass::Medium.replica_bounds(), (4, 16));
        assert_eq!(SizeClass::Large.replica_bounds(), (8, 32));
        assert_eq!(SizeClass::XLarge.replica_bounds(), (16, 64));
        assert_eq!(SizeClass::Small.steps(), 40_000);
        assert_eq!(SizeClass::XLarge.steps(), 10_000);
        assert_eq!(SizeClass::XLarge.grid(), 16_384);
    }

    #[test]
    fn scaling_is_monotone_decreasing_in_replicas() {
        let m = ScalingModel::default();
        for class in SizeClass::ALL {
            let (lo, hi) = class.replica_bounds();
            let mut prev = f64::INFINITY;
            for p in lo..=hi {
                let t = m.time_per_iter(class, p);
                assert!(t > 0.0);
                assert!(t <= prev, "{class} t_iter not decreasing at p={p}");
                prev = t;
            }
        }
    }

    #[test]
    fn scaling_is_sublinear_for_small_class() {
        // Small problems scale poorly: doubling replicas from min to
        // 2×min must give < 2× speedup.
        let m = ScalingModel::default();
        let t2 = m.time_per_iter(SizeClass::Small, 2);
        let t4 = m.time_per_iter(SizeClass::Small, 4);
        assert!(t2 / t4 < 2.0, "small class scales too well");
        // XLarge scales much better than small over one doubling.
        let x16 = m.time_per_iter(SizeClass::XLarge, 16);
        let x32 = m.time_per_iter(SizeClass::XLarge, 32);
        assert!(x16 / x32 > t2 / t4);
    }

    #[test]
    fn runtimes_land_in_table1_regime() {
        // Jobs take hundreds (not tens or thousands) of seconds at max
        // replicas so a 16-job campaign lasts ~30 min like the paper's.
        let m = ScalingModel::default();
        for class in SizeClass::ALL {
            let (lo, hi) = class.replica_bounds();
            let at_max = m.runtime(class, hi);
            let at_min = m.runtime(class, lo);
            assert!(
                (100.0..=800.0).contains(&at_max),
                "{class} runtime at max = {at_max}"
            );
            assert!(
                at_min > at_max,
                "{class} min-replica runtime must be longer"
            );
        }
    }

    #[test]
    fn rate_is_inverse_of_time() {
        let m = ScalingModel::default();
        let t = m.time_per_iter(SizeClass::Medium, 8);
        assert!((m.rate(SizeClass::Medium, 8) * t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_restart_grows_with_target_pes() {
        let o = OverheadModel::default();
        let b8 = o.breakdown(SizeClass::Large, 16, 8);
        let b32 = o.breakdown(SizeClass::Large, 16, 32);
        assert!(b32.restart > b8.restart);
    }

    #[test]
    fn overhead_ckpt_shrinks_with_more_source_replicas() {
        // Fig. 5a: checkpoint time decreases as replicas grow (less
        // data per replica, parallel writes).
        let o = OverheadModel::default();
        let few = o.breakdown(SizeClass::XLarge, 8, 4);
        let many = o.breakdown(SizeClass::XLarge, 32, 16);
        assert!(many.checkpoint < few.checkpoint);
    }

    #[test]
    fn overhead_grows_with_problem_size() {
        // Fig. 5c: lb/ckpt/restore grow with grid size, restart flat.
        let o = OverheadModel::default();
        let small = o.breakdown(SizeClass::Small, 32, 16);
        let xl = o.breakdown(SizeClass::XLarge, 32, 16);
        assert!(xl.checkpoint > small.checkpoint);
        assert!(xl.restore > small.restore);
        assert!(xl.lb > small.lb);
        assert_eq!(xl.restart, small.restart);
    }

    #[test]
    fn small_problem_overhead_dominated_by_restart() {
        // Fig. 5c's left end: restart dominates for small grids.
        let o = OverheadModel::default();
        let b = o.breakdown(SizeClass::Small, 32, 16);
        assert!(b.restart > b.checkpoint + b.restore + b.lb);
    }

    #[test]
    fn noop_rescale_is_free() {
        let o = OverheadModel::default();
        assert_eq!(o.breakdown(SizeClass::Large, 16, 16).total(), 0.0);
        assert_eq!(o.total(SizeClass::Large, 16, 16).as_secs(), 0.0);
    }

    #[test]
    fn total_overhead_is_seconds_scale() {
        // Rescale overhead must be small relative to the 180 s gap
        // (the paper's conclusion that overhead matters little).
        let o = OverheadModel::default();
        for class in SizeClass::ALL {
            let (lo, hi) = class.replica_bounds();
            let t = o.total(class, hi, lo).as_secs();
            assert!(t > 0.0 && t < 15.0, "{class} overhead {t}");
        }
    }

    #[test]
    fn incremental_overhead_beats_full_restart_everywhere() {
        let full = OverheadModel::default();
        let inc = OverheadModel::incremental();
        for class in SizeClass::ALL {
            let (lo, hi) = class.replica_bounds();
            for (from, to) in [(hi, lo), (lo, hi), (hi, hi / 2), (hi / 2, hi)] {
                if from == to {
                    continue;
                }
                let f = full.total(class, from, to).as_secs();
                let i = inc.total(class, from, to).as_secs();
                assert!(i < f, "{class} {from}->{to}: incremental {i} >= full {f}");
            }
        }
    }

    #[test]
    fn incremental_shrink_has_no_restart_or_ckpt_stage() {
        let inc = OverheadModel::incremental();
        let b = inc.breakdown(SizeClass::Large, 32, 16);
        assert_eq!(b.restart, 0.0);
        assert_eq!(b.checkpoint, 0.0);
        assert_eq!(b.restore, 0.0);
        assert!(b.lb > 0.0);
        // Expand pays one parallel spawn round, far below the full
        // sequential relaunch.
        let e = inc.breakdown(SizeClass::Large, 16, 32);
        let full = OverheadModel::default().breakdown(SizeClass::Large, 16, 32);
        assert!(e.restart > 0.0 && e.restart < full.restart / 4.0);
    }

    #[test]
    fn incremental_overhead_scales_with_bytes_moved() {
        // Halving moves ~half the state; dropping one replica of 32
        // moves ~1/32nd. Overhead must reflect that.
        let inc = OverheadModel::incremental();
        let inc_base = inc.lb_base;
        let big_move = inc.breakdown(SizeClass::XLarge, 32, 16).lb - inc_base;
        let small_move = inc.breakdown(SizeClass::XLarge, 32, 31).lb - inc_base;
        assert!(small_move < big_move / 4.0, "{small_move} vs {big_move}");
    }

    #[test]
    fn job_rate_dispatches_on_shape() {
        let m = ScalingModel::default();
        // Class shapes go through the strong-scaling curve.
        assert_eq!(
            m.job_rate(&JobShape::Class(SizeClass::Medium), 8),
            m.rate(SizeClass::Medium, 8)
        );
        // Malleable shapes are linear: replicas work-units per second,
        // so a job of `work` core-seconds runs in work/replicas seconds.
        let shape = JobShape::Malleable {
            min_replicas: 2,
            max_replicas: 16,
            work: 3200.0,
        };
        assert_eq!(m.job_rate(&shape, 4), 4.0);
        assert_eq!(m.job_rate(&shape, 16), 16.0);
    }

    #[test]
    fn job_overhead_dispatches_on_shape() {
        let o = OverheadModel::default();
        // Class shapes reproduce the class breakdown exactly.
        assert_eq!(
            o.job_breakdown(&JobShape::Class(SizeClass::Large), 16, 8),
            o.breakdown(SizeClass::Large, 16, 8)
        );
        // Malleable overhead is positive, grows with work, and no-ops
        // on from == to.
        let small = JobShape::Malleable {
            min_replicas: 2,
            max_replicas: 8,
            work: 1000.0,
        };
        let big = JobShape::Malleable {
            min_replicas: 2,
            max_replicas: 8,
            work: 1_000_000.0,
        };
        assert_eq!(o.job_total(&small, 4, 4).as_secs(), 0.0);
        let ts = o.job_total(&small, 8, 4).as_secs();
        let tb = o.job_total(&big, 8, 4).as_secs();
        assert!(ts > 0.0 && tb > ts, "{ts} vs {tb}");
    }

    #[test]
    fn recovery_cost_is_restart_plus_restore() {
        let o = OverheadModel::default();
        let shape = JobShape::Class(SizeClass::Large);
        let t = o.recovery_total(&shape, 16).as_secs();
        let expected = o.restart_base
            + o.restart_per_pe * 16.0
            + shape.state_bytes() / (o.ckpt_bw_per_replica * 16.0);
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
        // Seconds-scale, like every other overhead in the model.
        assert!(t > 0.0 && t < 15.0);
    }

    #[test]
    fn from_anchors_builds_usable_model() {
        let m = ScalingModel::from_anchors(
            vec![(2.0, 1.0), (8.0, 0.5)],
            vec![(4.0, 1.0), (16.0, 0.4)],
            vec![(8.0, 1.0), (32.0, 0.3)],
            vec![(16.0, 1.0), (64.0, 0.3)],
        );
        assert_eq!(m.time_per_iter(SizeClass::Small, 2), 1.0);
        assert!(m.time_per_iter(SizeClass::Small, 4) < 1.0);
    }
}
