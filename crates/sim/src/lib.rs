//! # sched-sim — the scheduling-policy simulator (paper artifact A2)
//!
//! A deterministic discrete-event simulator that evaluates the four
//! scheduling policies (elastic, moldable, rigid-min, rigid-max) over
//! randomized 16-job workloads, using piecewise-linear strong-scaling
//! and rescale-overhead models exactly as described in §4.3.1 of the
//! paper. Crucially, the policy implementation is **shared with the
//! live operator** (`elastic_core::Policy`), so the Simulation and
//! Actual columns of Table 1 exercise the same decision code.
//!
//! * [`events`] — deterministic event queue with stale-completion
//!   invalidation.
//! * [`model`] — strong-scaling curves and overhead stages over the
//!   workload layer's size classes and job shapes.
//! * [`workload`] — re-exports of the unified `hpc-workload` layer
//!   (the paper generator, SWF trace replay, Poisson arrivals).
//! * [`engine`] — the simulation loop, replaying a `WorkloadSpec`'s
//!   own per-job arrival and cancellation times.
//! * [`experiments`] — the Fig. 7 / Fig. 8 sweeps, Table 1 rows and
//!   the parameterized heavy-traffic replay.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod experiments;
pub mod model;
pub mod workload;

pub use engine::{simulate, SimConfig, SimOutcome, SimState};
pub use experiments::{
    averaged_point, averaged_point_with_overhead, heavy_traffic_replay, heavy_traffic_run,
    heavy_traffic_workload, sweep_rescale_gap, sweep_rescale_gap_with_overhead,
    sweep_submission_gap, table1_simulation, SweepPoint, DEFAULT_JOBS, DEFAULT_SEEDS,
};
pub use model::{JobShape, OverheadBreakdown, OverheadModel, ScalingModel, SizeClass};
pub use workload::{
    generate_workload, load_workload, poisson_workload, FaultEvent, FaultKind, FaultSpec,
    FlakyEvent, FlakyOp, FlakySpec, JobSpec, MalleabilityModel, SwfError, SwfLoadConfig,
    WorkloadError, WorkloadSpec,
};
