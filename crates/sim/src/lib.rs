//! # sched-sim — the scheduling-policy simulator (paper artifact A2)
//!
//! A deterministic discrete-event simulator that evaluates the four
//! scheduling policies (elastic, moldable, rigid-min, rigid-max) over
//! randomized 16-job workloads, using piecewise-linear strong-scaling
//! and rescale-overhead models exactly as described in §4.3.1 of the
//! paper. Crucially, the policy implementation is **shared with the
//! live operator** (`elastic_core::Policy`), so the Simulation and
//! Actual columns of Table 1 exercise the same decision code.
//!
//! ## The raw-speed DES core
//!
//! The replay loop is built for million-job traces; three layers keep
//! the per-event cost flat as traces grow:
//!
//! * **Calendar event queue** ([`events`]) — events live in a sorted
//!   current bucket (drained by cursor), an array of unsorted future
//!   piles, and a far list beyond the current epoch; `push` and `pop`
//!   are O(1) amortized, with the far list re-bucketized lazily on
//!   epoch advance. Pop order is *exactly* the old binary heap's
//!   `(timestamp, insertion seq)` order, so replays stay
//!   bit-identical. Stale completions (superseded by a rescale) are
//!   tombstoned in place and swept by per-bucket compaction once they
//!   dominate the queue.
//! * **Struct-of-arrays job storage** (`elastic_core::view`) — the
//!   `ClusterView` behind every policy decision stores jobs as a
//!   packed arena: one 32-byte hot row per job (replica bounds,
//!   priority, live replicas, last action, flags) that policy scans
//!   touch with a single cache line, and cold columns (submission
//!   time, walltime estimate) off the scan path.
//! * **Batched policy invocation** ([`engine`]) — all events at one
//!   instant drain into a burst: the engine hands the policy a
//!   `SubmitBurst`/`CompleteBurst` driver and the policy consumes the
//!   whole same-timestamp batch through one dispatch, with actions
//!   applied per admission so decision state is identical to the
//!   one-event-at-a-time sequence.
//!
//! Throughput is tracked in the `sim_core` section of
//! `BENCH_sim_scale.json` (written by the `sim_scale` bench) and
//! gated by `bench_gate`: a >25% events/sec regression per case fails
//! CI, and `SIM_CORE_STRICT=1` additionally arms an absolute
//! aggregate floor.
//!
//! ## Modules
//!
//! * [`events`] — calendar event queue with stale-completion
//!   invalidation and epoch re-bucketizing.
//! * [`model`] — strong-scaling curves and overhead stages over the
//!   workload layer's size classes and job shapes, with a memoized
//!   per-class rate cache on the replay hot path.
//! * [`workload`] — re-exports of the unified `hpc-workload` layer
//!   (the paper generator, SWF trace replay, Poisson arrivals).
//! * [`engine`] — the simulation loop, replaying a `WorkloadSpec`'s
//!   own per-job arrival and cancellation times through the burst
//!   drivers.
//! * [`experiments`] — the Fig. 7 / Fig. 8 sweeps, Table 1 rows and
//!   the parameterized heavy-traffic replay.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod experiments;
pub mod model;
pub mod workload;

pub use engine::{simulate, SimConfig, SimOutcome, SimState};
pub use experiments::{
    averaged_point, averaged_point_with_overhead, heavy_traffic_replay, heavy_traffic_run,
    heavy_traffic_workload, sweep_rescale_gap, sweep_rescale_gap_with_overhead,
    sweep_submission_gap, table1_simulation, SweepPoint, DEFAULT_JOBS, DEFAULT_SEEDS,
};
pub use model::{JobShape, OverheadBreakdown, OverheadModel, ScalingModel, SizeClass};
pub use workload::{
    generate_workload, load_workload, poisson_workload, FaultEvent, FaultKind, FaultSpec,
    FlakyEvent, FlakyOp, FlakySpec, JobSpec, MalleabilityModel, SwfError, SwfLoadConfig,
    WorkloadError, WorkloadSpec,
};
