//! The discrete-event queue.
//!
//! A deterministic time-ordered heap: ties in time break by insertion
//! sequence, so simulation runs are exactly reproducible. Completion
//! events carry a per-job generation number; rescaling a job bumps its
//! generation, turning any previously scheduled completion into a
//! harmless stale event (the standard DES invalidation idiom).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hpc_metrics::SimTime;

/// A scheduled simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Job submission.
    Submit {
        /// Index into the workload.
        job: usize,
    },
    /// Predicted job completion (valid only if the job's generation
    /// still equals `generation`).
    Completion {
        /// Index into the workload.
        job: usize,
        /// Generation at scheduling time.
        generation: u64,
    },
    /// Client cancellation of a job (the DES analogue of
    /// `SchedulerClient::cancel`).
    Cancel {
        /// Index into the workload.
        job: usize,
    },
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Number of pending events (including stale completions).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), Event::Submit { job: 1 });
        q.push(t(1.0), Event::Submit { job: 0 });
        q.push(t(3.0), Event::Submit { job: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Submit { job } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for job in 0..10 {
            q.push(t(7.0), Event::Submit { job });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Submit { job } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn completion_events_carry_generation() {
        let mut q = EventQueue::new();
        q.push(
            t(1.0),
            Event::Completion {
                job: 0,
                generation: 2,
            },
        );
        let (_, e) = q.pop().unwrap();
        assert_eq!(
            e,
            Event::Completion {
                job: 0,
                generation: 2
            }
        );
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
