//! The discrete-event queue.
//!
//! A deterministic **calendar (ladder) queue**: events are spread over
//! an array of time buckets so that push and pop are O(1) amortized
//! instead of the O(log n) of a binary heap — at trace scale the heap
//! holds millions of entries and every sift walks ~20 cache-missing
//! levels, which made it the hottest structure in the engine. Ties in
//! time break by insertion sequence, so simulation runs are exactly
//! reproducible: the pop order is identical to the old heap's
//! `(timestamp, seq)` order, entry for entry.
//!
//! Structure:
//!
//! * **Current bucket** (`cur`) — the bucket being drained, sorted by
//!   `(at, seq)` and consumed through a cursor. Pushes that land inside
//!   its time window (the common "completion scheduled soon" case, and
//!   the only-correctness case of a push at or before `now`) are
//!   binary-inserted behind the cursor.
//! * **Epoch piles** (`piles`) — the rest of the near horizon, split
//!   into equal-width windows. A push appends to its pile unsorted in
//!   O(1); a pile is sorted once, when it becomes the current bucket.
//! * **Far list** (`far`) — everything beyond the horizon (or with a
//!   non-finite timestamp), kept unsorted with O(1) appends. When the
//!   epoch's piles are exhausted the far list is re-bucketized into a
//!   fresh epoch spanning its own min..max; a degenerate span (all one
//!   instant, or non-finite) falls back to sorting the whole list as a
//!   single terminal bucket, which is always correct.
//!
//! Bucket assignment is a monotone function of the timestamp and every
//! same-instant entry carries a strictly increasing `seq`, so no
//! routing choice can invert the `(at, seq)` total order.
//!
//! Completion events carry a per-job generation number; rescaling a job
//! bumps its generation, turning any previously scheduled completion
//! into a harmless stale event (the standard DES invalidation idiom).
//!
//! Two scale features keep the queue O(live jobs) on trace-scale runs:
//!
//! * **Submit coalescing** — a burst of submissions at one timestamp is
//!   a single [`Event::Submit`] carrying a contiguous id range, not n
//!   queue entries.
//! * **Stale compaction** — the engine reports each invalidated
//!   completion via [`EventQueue::mark_stale`]; once more than half the
//!   queue is stale the engine sweeps it with [`EventQueue::compact`],
//!   which filters each bucket in place (order within a bucket is
//!   already `(at, seq)` or about to be sorted into it), so
//!   rescale-heavy runs cannot accumulate dead entries without bound.

use hpc_metrics::{JobId, SimTime};

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Submission of `count` jobs with contiguous ids starting at
    /// `first`, all at this timestamp (count > 1 when the workload's
    /// submission gap puts several arrivals on one instant).
    Submit {
        /// First job of the batch.
        first: JobId,
        /// Number of jobs submitted together.
        count: u32,
    },
    /// Predicted job completion (valid only if the job's generation
    /// still equals `generation`).
    Completion {
        /// The job.
        job: JobId,
        /// Generation at scheduling time.
        generation: u64,
    },
    /// Client cancellation of a job (the DES analogue of
    /// `SchedulerClient::cancel`).
    Cancel {
        /// The job.
        job: JobId,
    },
    /// Periodic policy-timer deadline (the DES analogue of the
    /// operator's timer pass): the engine calls
    /// `SchedulingPolicy::on_timer` and reschedules the next firing one
    /// `timer_interval` later while non-terminal jobs remain.
    Timer,
    /// Permanent loss of `slots` worker slots (a node failure from the
    /// workload's `FaultSpec`); never returns.
    NodeFail {
        /// Slots lost.
        slots: u32,
    },
    /// Temporary loss of `slots` worker slots (a spot reclamation); a
    /// matching [`Event::CapacityReturn`] gives them back later.
    CapacityReclaim {
        /// Slots reclaimed.
        slots: u32,
    },
    /// Return of `slots` previously reclaimed worker slots.
    CapacityReturn {
        /// Slots restored.
        slots: u32,
    },
    /// A kill-and-requeued job's backoff expired: it re-enters the
    /// scheduling queue and the admission decision runs again.
    Requeue {
        /// The job.
        job: JobId,
    },
    /// A scheduled transient control-plane fault (the workload's
    /// `FlakySpec`): the engine selects the deterministic victim, asks
    /// the shared resilience core for the outcome, and routes it
    /// through the existing requeue/evict machinery. Never stale.
    Flaky {
        /// Index into `FlakySpec::events`.
        index: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// How full of stale entries the queue may get (numerator/denominator)
/// before [`EventQueue::should_compact`] asks for a sweep.
const COMPACT_STALE_FRACTION: (usize, usize) = (1, 2);
/// No compaction below this queue size — sweeping a tiny queue is more
/// work than letting the stale entries pop out naturally.
const COMPACT_MIN_LEN: usize = 64;
/// An epoch with fewer far-list entries than this is not worth
/// bucketizing: sorting it once as a single terminal bucket is cheaper.
const MIN_BUCKETIZE: usize = 32;
/// Epoch pile-count bounds; the count scales with the far-list size so
/// piles stay around [`PILE_TARGET`] entries.
const MIN_PILES: usize = 16;
const MAX_PILES: usize = 1 << 16;
/// Aimed-for entries per pile at re-bucketize time.
const PILE_TARGET: usize = 16;

/// Deterministic calendar event queue with stale-entry accounting.
///
/// Drop-in replacement for the former `BinaryHeap<Reverse<Entry>>`:
/// identical pop order (time, then insertion sequence), identical
/// compaction accounting, plus O(1) [`EventQueue::next_at`] peeking
/// that the engine's same-instant batch drain builds on.
#[derive(Debug)]
pub struct EventQueue {
    /// The bucket currently being drained: sorted by `(at, seq)`,
    /// `cur[cur_head..]` still pending.
    cur: Vec<Entry>,
    cur_head: usize,
    /// Exclusive upper edge of `cur`'s time window.
    cur_end: f64,
    /// The current bucket is the epoch's last: it additionally owns
    /// every timestamp up to and including `epoch_max`.
    cur_last: bool,
    /// Future piles of the current epoch (unsorted append piles).
    piles: Vec<Vec<Entry>>,
    /// Next pile to promote; piles before it are empty (drained).
    pile_idx: usize,
    /// Low edge of pile 0's window.
    epoch_lo: f64,
    /// Pile window width (seconds).
    width: f64,
    /// Largest timestamp the epoch covers (inclusive).
    epoch_max: SimTime,
    /// Everything beyond the epoch horizon, unsorted.
    far: Vec<Entry>,
    /// Whether an epoch is materialized (false until the first pop
    /// after seeding, and again whenever the queue fully drains).
    active: bool,
    len: usize,
    next_seq: u64,
    stale: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            cur: Vec::new(),
            cur_head: 0,
            cur_end: f64::NEG_INFINITY,
            cur_last: false,
            piles: Vec::new(),
            pile_idx: 0,
            epoch_lo: 0.0,
            width: 0.0,
            epoch_max: SimTime::NEG_INFINITY,
            far: Vec::new(),
            active: false,
            len: 0,
            next_seq: 0,
            stale: 0,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Entry { at, seq, event };
        self.len += 1;
        if !self.active {
            // Seeding phase (or fully drained): accumulate unsorted;
            // the first pop bucketizes everything at once.
            self.far.push(e);
            return;
        }
        if at.as_secs() < self.cur_end || (self.cur_last && at <= self.epoch_max) {
            // Lands in the bucket being drained: binary-insert behind
            // the cursor. A push at or before the last popped instant
            // (never from the engine, but legal here) degenerates to
            // position `cur_head`, i.e. it pops next — exactly the
            // heap's behavior.
            let pos = self.cur_head + self.cur[self.cur_head..].partition_point(|p| p.at <= at);
            self.cur.insert(pos, e);
        } else if self.pile_idx < self.piles.len() && at <= self.epoch_max {
            let idx =
                pile_of(self.epoch_lo, self.width, at).clamp(self.pile_idx, self.piles.len() - 1);
            self.piles[idx].push(e);
        } else {
            self.far.push(e);
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.ensure_front();
        let e = *self.cur.get(self.cur_head)?;
        self.cur_head += 1;
        self.len -= 1;
        if self.len == 0 {
            self.reset_empty();
        }
        Some((e.at, e.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    /// O(1) except when it has to promote the next bucket — the same
    /// work an immediate [`EventQueue::pop`] would do anyway.
    pub fn next_at(&mut self) -> Option<SimTime> {
        self.ensure_front();
        self.cur.get(self.cur_head).map(|e| e.at)
    }

    /// Kind of the earliest pending event (with its timestamp), without
    /// removing it. Drives the engine's same-instant batch drain.
    pub fn peek(&mut self) -> Option<(SimTime, Event)> {
        self.ensure_front();
        self.cur.get(self.cur_head).map(|e| (e.at, e.event))
    }

    /// Makes `cur[cur_head]` the global minimum entry, promoting piles
    /// and re-bucketizing the far list as needed.
    fn ensure_front(&mut self) {
        while self.cur_head >= self.cur.len() {
            if self.active {
                // Promote the next non-empty pile of this epoch.
                while self.pile_idx < self.piles.len() {
                    let idx = self.pile_idx;
                    self.pile_idx += 1;
                    if !self.piles[idx].is_empty() {
                        self.cur = std::mem::take(&mut self.piles[idx]);
                        self.cur.sort_unstable();
                        self.cur_head = 0;
                        self.cur_end = self.epoch_lo + self.pile_idx as f64 * self.width;
                        self.cur_last = self.pile_idx == self.piles.len();
                        break;
                    }
                }
                if self.cur_head < self.cur.len() {
                    continue; // re-check the loop condition (promoted)
                }
                if self.pile_idx < self.piles.len() {
                    continue; // promoted an empty tail? (unreachable)
                }
            }
            if self.far.is_empty() {
                return; // genuinely empty
            }
            self.rebuild_epoch();
        }
    }

    /// Spreads the far list over a fresh epoch of piles and promotes
    /// the first bucket. Degenerate spans (single instant, non-finite
    /// bounds) sort the whole list as one terminal bucket instead —
    /// always correct, just unbucketed.
    fn rebuild_epoch(&mut self) {
        debug_assert!(!self.far.is_empty());
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in &self.far {
            let t = e.at.as_secs();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let span = hi - lo;
        let n = self.far.len();
        self.active = true;
        if n < MIN_BUCKETIZE || !span.is_finite() || span <= 0.0 {
            // Terminal single bucket covering everything seen so far.
            self.cur = std::mem::take(&mut self.far);
            self.cur.sort_unstable();
            self.cur_head = 0;
            self.cur_end = hi;
            self.cur_last = true;
            self.epoch_max = self.cur.last().expect("non-empty").at;
            self.piles.clear();
            self.pile_idx = 0;
            return;
        }
        let nb = (n / PILE_TARGET).clamp(MIN_PILES, MAX_PILES);
        let width = span / nb as f64;
        if !width.is_normal() {
            // Subnormal width: indistinguishable instants — fall back.
            self.cur = std::mem::take(&mut self.far);
            self.cur.sort_unstable();
            self.cur_head = 0;
            self.cur_end = hi;
            self.cur_last = true;
            self.epoch_max = self.cur.last().expect("non-empty").at;
            self.piles.clear();
            self.pile_idx = 0;
            return;
        }
        self.piles.clear();
        self.piles.resize_with(nb, Vec::new);
        self.epoch_lo = lo;
        self.width = width;
        self.epoch_max = SimTime::from_secs(hi);
        for e in self.far.drain(..) {
            let idx = pile_of(lo, width, e.at).min(nb - 1);
            self.piles[idx].push(e);
        }
        self.pile_idx = 0;
        self.cur.clear();
        self.cur_head = 0;
        self.cur_end = lo;
        self.cur_last = false;
        // The outer ensure_front loop promotes the first pile.
    }

    /// Drops drained storage once the queue is fully empty so the next
    /// seeding phase starts clean.
    fn reset_empty(&mut self) {
        self.cur.clear();
        self.cur_head = 0;
        self.cur_end = f64::NEG_INFINITY;
        self.cur_last = false;
        self.piles.clear();
        self.pile_idx = 0;
        self.epoch_max = SimTime::NEG_INFINITY;
        self.active = false;
    }

    /// Number of pending events (including stale completions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Pending events not known to be stale — the live backlog the
    /// engine's `peak_queue_len` high-water mark tracks.
    pub fn live_len(&self) -> usize {
        self.len - self.stale.min(self.len)
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records that one pending completion was invalidated (its job
    /// rescaled or cancelled). The engine calls this exactly once per
    /// invalidation; the counter drives [`EventQueue::should_compact`].
    pub fn mark_stale(&mut self) {
        self.stale += 1;
    }

    /// Records that a stale entry left the queue by being popped (the
    /// engine noticed its generation mismatch).
    pub fn note_stale_popped(&mut self) {
        self.stale = self.stale.saturating_sub(1);
    }

    /// Known-stale entries still in the queue.
    pub fn stale_len(&self) -> usize {
        self.stale
    }

    /// `true` once more than half the (non-trivial) queue is stale.
    pub fn should_compact(&self) -> bool {
        let (num, den) = COMPACT_STALE_FRACTION;
        self.len >= COMPACT_MIN_LEN && self.stale * den > self.len * num
    }

    /// Sweeps the queue, keeping only entries for which `is_live`
    /// returns true. Each bucket filters in place — the current bucket
    /// keeps its sorted order, piles and far list their insertion
    /// order — so the deterministic pop order is unchanged. Resets the
    /// stale counter.
    pub fn compact(&mut self, mut is_live: impl FnMut(&Event) -> bool) {
        if self.cur_head > 0 {
            self.cur.drain(..self.cur_head);
            self.cur_head = 0;
        }
        self.cur.retain(|e| is_live(&e.event));
        let first_pending = self.pile_idx.min(self.piles.len());
        for pile in &mut self.piles[first_pending..] {
            pile.retain(|e| is_live(&e.event));
        }
        self.far.retain(|e| is_live(&e.event));
        self.len = self.cur.len() + self.piles.iter().map(Vec::len).sum::<usize>() + self.far.len();
        self.stale = 0;
        if self.len == 0 {
            self.reset_empty();
        }
    }
}

/// Pile index of `at` in an epoch anchored at `lo` with the given
/// width. Monotone in `at` (IEEE subtraction, division and floor are
/// monotone for a fixed `lo`/`width`), which is what makes the bucket
/// routing order-safe.
fn pile_of(lo: f64, width: f64, at: SimTime) -> usize {
    let rel = (at.as_secs() - lo) / width;
    if rel <= 0.0 {
        0
    } else {
        rel as usize // saturates at usize::MAX for huge/overflowed rel
    }
}

#[cfg(test)]
mod tests {
    use proptest::{any, prop_assert, prop_assert_eq, proptest};

    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn submit(job: u32) -> Event {
        Event::Submit {
            first: JobId(job),
            count: 1,
        }
    }

    fn first_of(e: Event) -> u32 {
        match e {
            Event::Submit { first, .. } => first.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), submit(1));
        q.push(t(1.0), submit(0));
        q.push(t(3.0), submit(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for job in 0..10 {
            q.push(t(7.0), submit(job));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn completion_events_carry_generation() {
        let mut q = EventQueue::new();
        q.push(
            t(1.0),
            Event::Completion {
                job: JobId(0),
                generation: 2,
            },
        );
        let (_, e) = q.pop().unwrap();
        assert_eq!(
            e,
            Event::Completion {
                job: JobId(0),
                generation: 2
            }
        );
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn compaction_trigger_respects_threshold_and_min_len() {
        let mut q = EventQueue::new();
        for g in 0..10 {
            q.push(
                t(1.0),
                Event::Completion {
                    job: JobId(0),
                    generation: g,
                },
            );
            q.mark_stale();
        }
        // 100% stale but below COMPACT_MIN_LEN: no sweep requested.
        assert!(!q.should_compact());
        for g in 0..COMPACT_MIN_LEN as u64 {
            q.push(
                t(2.0),
                Event::Completion {
                    job: JobId(1),
                    generation: g,
                },
            );
        }
        // 10 stale of 74: under half.
        assert!(!q.should_compact());
        for _ in 0..28 {
            q.mark_stale();
        }
        assert_eq!(q.stale_len(), 38);
        assert!(q.should_compact(), "38 of 74 stale crosses the half mark");
    }

    #[test]
    fn compact_drops_dead_entries_and_preserves_order() {
        let mut q = EventQueue::new();
        // Interleave live submits with stale completions.
        for i in 0..40u32 {
            q.push(t(f64::from(i)), submit(i));
            q.push(
                t(f64::from(i)),
                Event::Completion {
                    job: JobId(i),
                    generation: 0, // all invalidated below
                },
            );
            q.mark_stale();
        }
        assert_eq!(q.len(), 80);
        q.compact(|e| !matches!(e, Event::Completion { generation: 0, .. }));
        assert_eq!(q.len(), 40, "all stale completions swept");
        assert_eq!(q.stale_len(), 0);
        // Pop order of the survivors is unchanged.
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn compact_mid_drain_keeps_cursor_position_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(f64::from(i)), submit(i));
        }
        // Drain a prefix so the current bucket cursor is mid-flight.
        for i in 0..10u32 {
            assert_eq!(first_of(q.pop().unwrap().1), i);
        }
        q.compact(|e| first_of(*e).is_multiple_of(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, (10..100).filter(|i| i % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn popped_stale_entries_decrement_the_counter() {
        let mut q = EventQueue::new();
        q.push(
            t(1.0),
            Event::Completion {
                job: JobId(0),
                generation: 0,
            },
        );
        q.mark_stale();
        assert_eq!(q.stale_len(), 1);
        let _ = q.pop();
        q.note_stale_popped();
        assert_eq!(q.stale_len(), 0);
        q.note_stale_popped(); // saturates, never underflows
        assert_eq!(q.stale_len(), 0);
    }

    #[test]
    fn live_len_excludes_stale_entries() {
        let mut q = EventQueue::new();
        for g in 0..4 {
            q.push(
                t(1.0),
                Event::Completion {
                    job: JobId(0),
                    generation: g,
                },
            );
        }
        assert_eq!(q.live_len(), 4);
        q.mark_stale();
        q.mark_stale();
        assert_eq!(q.len(), 4);
        assert_eq!(q.live_len(), 2);
    }

    #[test]
    fn interleaved_push_pop_across_epochs() {
        // Seeds a wide horizon, then keeps pushing near-future events
        // while draining — exercising cur-window inserts, pile routing
        // and at least one far-list re-bucketize.
        let mut q = EventQueue::new();
        for i in 0..1000u32 {
            q.push(t(f64::from(i) * 10.0), submit(i));
        }
        let mut popped = Vec::new();
        let mut extra = 1000u32;
        while let Some((at, e)) = q.pop() {
            popped.push((at, first_of(e)));
            // Push a trailer event shortly after `now` for a while.
            if extra < 1500 {
                q.push(SimTime::from_secs(at.as_secs() + 3.0), submit(extra));
                extra += 1;
            }
        }
        assert_eq!(popped.len(), 1500);
        let mut sorted = popped.clone();
        sorted.sort_by_key(|a| a.0);
        // Same multiset order by time (ties impossible here by construction).
        assert_eq!(popped, sorted);
    }

    #[test]
    fn event_exactly_at_bucket_horizon_rollover() {
        // Satellite: an event scheduled exactly at the epoch horizon
        // (== max of the seeded span) and one just past it must pop in
        // timestamp order across the epoch boundary.
        let mut q = EventQueue::new();
        for i in 0..64u32 {
            q.push(t(f64::from(i)), submit(i));
        }
        // Trigger epoch build (horizon becomes [0, 63]).
        assert_eq!(first_of(q.pop().unwrap().1), 0);
        // Exactly at the inclusive horizon edge → last pile; just past
        // it → far list; re-bucketized later but still in order.
        q.push(t(63.0), submit(1000));
        q.push(t(63.0 + f64::EPSILON * 64.0), submit(1001));
        q.push(t(70.0), submit(1002));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        let mut expect: Vec<u32> = (1..64).collect();
        expect.extend([1000, 1001, 1002]);
        assert_eq!(order, expect);
    }

    /// Reference model for the calendar queue: the pre-calendar
    /// `BinaryHeap` semantics — pop strictly by `(timestamp, push
    /// sequence)` — implemented as an O(n^2) sorted-drain Vec so the
    /// model itself is too simple to be wrong.
    struct RefQueue {
        entries: Vec<(SimTime, u64, Event)>,
        seq: u64,
    }

    impl RefQueue {
        fn new() -> Self {
            RefQueue {
                entries: Vec::new(),
                seq: 0,
            }
        }

        fn push(&mut self, at: SimTime, event: Event) {
            self.entries.push((at, self.seq, event));
            self.seq += 1;
        }

        fn pop(&mut self) -> Option<(SimTime, Event)> {
            let best = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (a.0, a.1).cmp(&(b.0, b.1)))
                .map(|(i, _)| i)?;
            let (at, _, e) = self.entries.remove(best);
            Some((at, e))
        }

        fn compact(&mut self, mut is_live: impl FnMut(&Event) -> bool) {
            self.entries.retain(|(_, _, e)| is_live(e));
        }
    }

    proptest! {
        /// The calendar queue pops in exactly the reference heap order —
        /// including same-timestamp ties resolved by push sequence —
        /// under arbitrary interleavings of pushes (with deliberately
        /// repeated timestamps), pops, stale marks and compaction
        /// sweeps crossing bucket epochs.
        #[test]
        fn calendar_queue_matches_reference_heap(seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut q = EventQueue::new();
            let mut r = RefQueue::new();
            let mut dead: std::collections::HashSet<u32> = std::collections::HashSet::new();
            let mut times: Vec<f64> = Vec::new();
            let mut next_id = 0u32;
            for _ in 0..rng.gen_range(1..60) {
                match rng.gen_range(0u32..10) {
                    // Push a burst (often reusing an earlier timestamp so
                    // same-instant ties are common, sometimes far in the
                    // future so the far list and epoch rebuilds engage).
                    0..=5 => {
                        for _ in 0..rng.gen_range(1usize..8) {
                            let at = if !times.is_empty() && rng.gen_bool(0.3) {
                                times[rng.gen_range(0..times.len())]
                            } else if rng.gen_bool(0.15) {
                                rng.gen_range(0.0..1e6)
                            } else {
                                rng.gen_range(0.0..500.0)
                            };
                            times.push(at);
                            let e = submit(next_id);
                            next_id += 1;
                            q.push(t(at), e);
                            r.push(t(at), e);
                        }
                    }
                    // Pop a few; each pop must agree exactly. Popped
                    // dead entries feed the stale-pop bookkeeping.
                    6..=8 => {
                        for _ in 0..rng.gen_range(1usize..6) {
                            let got = q.pop();
                            prop_assert_eq!(got, r.pop());
                            if let Some((_, e)) = got {
                                if dead.contains(&first_of(e)) {
                                    q.note_stale_popped();
                                }
                            }
                        }
                    }
                    // Kill a random live id and compact both sides.
                    _ => {
                        if next_id > 0 {
                            let victim = rng.gen_range(0..next_id);
                            if dead.insert(victim) {
                                q.mark_stale();
                            }
                        }
                        let d = dead.clone();
                        q.compact(|e| !d.contains(&first_of(*e)));
                        let d = dead.clone();
                        r.compact(|e| !d.contains(&first_of(*e)));
                    }
                }
                prop_assert_eq!(q.len(), r.entries.len(), "length diverged");
            }
            // Drain: the tails must be identical too.
            loop {
                let (a, b) = (q.pop(), r.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(q.is_empty());
        }
    }
}
