//! The discrete-event queue.
//!
//! A deterministic time-ordered heap: ties in time break by insertion
//! sequence, so simulation runs are exactly reproducible. Completion
//! events carry a per-job generation number; rescaling a job bumps its
//! generation, turning any previously scheduled completion into a
//! harmless stale event (the standard DES invalidation idiom).
//!
//! Two scale features keep the queue O(live jobs) on trace-scale runs:
//!
//! * **Submit coalescing** — a burst of submissions at one timestamp is
//!   a single [`Event::Submit`] carrying a contiguous id range, not n
//!   heap entries.
//! * **Stale compaction** — the engine reports each invalidated
//!   completion via [`EventQueue::mark_stale`]; once more than half the
//!   heap is stale the engine sweeps it with
//!   [`EventQueue::compact`], so rescale-heavy runs cannot accumulate
//!   dead entries without bound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hpc_metrics::{JobId, SimTime};

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Submission of `count` jobs with contiguous ids starting at
    /// `first`, all at this timestamp (count > 1 when the workload's
    /// submission gap puts several arrivals on one instant).
    Submit {
        /// First job of the batch.
        first: JobId,
        /// Number of jobs submitted together.
        count: u32,
    },
    /// Predicted job completion (valid only if the job's generation
    /// still equals `generation`).
    Completion {
        /// The job.
        job: JobId,
        /// Generation at scheduling time.
        generation: u64,
    },
    /// Client cancellation of a job (the DES analogue of
    /// `SchedulerClient::cancel`).
    Cancel {
        /// The job.
        job: JobId,
    },
    /// Periodic policy-timer deadline (the DES analogue of the
    /// operator's timer pass): the engine calls
    /// `SchedulingPolicy::on_timer` and reschedules the next firing one
    /// `timer_interval` later while non-terminal jobs remain.
    Timer,
    /// Permanent loss of `slots` worker slots (a node failure from the
    /// workload's `FaultSpec`); never returns.
    NodeFail {
        /// Slots lost.
        slots: u32,
    },
    /// Temporary loss of `slots` worker slots (a spot reclamation); a
    /// matching [`Event::CapacityReturn`] gives them back later.
    CapacityReclaim {
        /// Slots reclaimed.
        slots: u32,
    },
    /// Return of `slots` previously reclaimed worker slots.
    CapacityReturn {
        /// Slots restored.
        slots: u32,
    },
    /// A kill-and-requeued job's backoff expired: it re-enters the
    /// scheduling queue and the admission decision runs again.
    Requeue {
        /// The job.
        job: JobId,
    },
    /// A scheduled transient control-plane fault (the workload's
    /// `FlakySpec`): the engine selects the deterministic victim, asks
    /// the shared resilience core for the outcome, and routes it
    /// through the existing requeue/evict machinery. Never stale.
    Flaky {
        /// Index into `FlakySpec::events`.
        index: u32,
    },
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// How full of stale entries the heap may get (numerator/denominator)
/// before [`EventQueue::should_compact`] asks for a sweep.
const COMPACT_STALE_FRACTION: (usize, usize) = (1, 2);
/// No compaction below this heap size — sweeping a tiny heap is more
/// work than letting the stale entries pop out naturally.
const COMPACT_MIN_LEN: usize = 64;

/// Deterministic event queue with stale-entry accounting.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
    stale: usize,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Number of pending events (including stale completions).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Records that one pending completion was invalidated (its job
    /// rescaled or cancelled). The engine calls this exactly once per
    /// invalidation; the counter drives [`EventQueue::should_compact`].
    pub fn mark_stale(&mut self) {
        self.stale += 1;
    }

    /// Records that a stale entry left the heap by being popped (the
    /// engine noticed its generation mismatch).
    pub fn note_stale_popped(&mut self) {
        self.stale = self.stale.saturating_sub(1);
    }

    /// Known-stale entries still in the heap.
    pub fn stale_len(&self) -> usize {
        self.stale
    }

    /// `true` once more than half the (non-trivial) heap is stale.
    pub fn should_compact(&self) -> bool {
        let (num, den) = COMPACT_STALE_FRACTION;
        self.heap.len() >= COMPACT_MIN_LEN && self.stale * den > self.heap.len() * num
    }

    /// Sweeps the heap, keeping only entries for which `is_live`
    /// returns true. Entries keep their insertion sequence, so the
    /// deterministic pop order is unchanged. Resets the stale counter.
    pub fn compact(&mut self, mut is_live: impl FnMut(&Event) -> bool) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|Reverse(e)| is_live(&e.event))
            .collect();
        self.stale = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn submit(job: u32) -> Event {
        Event::Submit {
            first: JobId(job),
            count: 1,
        }
    }

    fn first_of(e: Event) -> u32 {
        match e {
            Event::Submit { first, .. } => first.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), submit(1));
        q.push(t(1.0), submit(0));
        q.push(t(3.0), submit(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for job in 0..10 {
            q.push(t(7.0), submit(job));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn completion_events_carry_generation() {
        let mut q = EventQueue::new();
        q.push(
            t(1.0),
            Event::Completion {
                job: JobId(0),
                generation: 2,
            },
        );
        let (_, e) = q.pop().unwrap();
        assert_eq!(
            e,
            Event::Completion {
                job: JobId(0),
                generation: 2
            }
        );
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn compaction_trigger_respects_threshold_and_min_len() {
        let mut q = EventQueue::new();
        for g in 0..10 {
            q.push(
                t(1.0),
                Event::Completion {
                    job: JobId(0),
                    generation: g,
                },
            );
            q.mark_stale();
        }
        // 100% stale but below COMPACT_MIN_LEN: no sweep requested.
        assert!(!q.should_compact());
        for g in 0..COMPACT_MIN_LEN as u64 {
            q.push(
                t(2.0),
                Event::Completion {
                    job: JobId(1),
                    generation: g,
                },
            );
        }
        // 10 stale of 74: under half.
        assert!(!q.should_compact());
        for _ in 0..28 {
            q.mark_stale();
        }
        assert_eq!(q.stale_len(), 38);
        assert!(q.should_compact(), "38 of 74 stale crosses the half mark");
    }

    #[test]
    fn compact_drops_dead_entries_and_preserves_order() {
        let mut q = EventQueue::new();
        // Interleave live submits with stale completions.
        for i in 0..40u32 {
            q.push(t(f64::from(i)), submit(i));
            q.push(
                t(f64::from(i)),
                Event::Completion {
                    job: JobId(i),
                    generation: 0, // all invalidated below
                },
            );
            q.mark_stale();
        }
        assert_eq!(q.len(), 80);
        q.compact(|e| !matches!(e, Event::Completion { generation: 0, .. }));
        assert_eq!(q.len(), 40, "all stale completions swept");
        assert_eq!(q.stale_len(), 0);
        // Pop order of the survivors is unchanged.
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| first_of(e))
            .collect();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn popped_stale_entries_decrement_the_counter() {
        let mut q = EventQueue::new();
        q.push(
            t(1.0),
            Event::Completion {
                job: JobId(0),
                generation: 0,
            },
        );
        q.mark_stale();
        assert_eq!(q.stale_len(), 1);
        let _ = q.pop();
        q.note_stale_popped();
        assert_eq!(q.stale_len(), 0);
        q.note_stale_popped(); // saturates, never underflows
        assert_eq!(q.stale_len(), 0);
    }
}
