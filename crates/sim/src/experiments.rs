//! Experiment sweeps (Figs. 7 & 8, Table 1 simulation column).
//!
//! Each sweep runs the four policies over many seeded random workloads
//! and averages the four metrics, exactly like the paper's §4.3.1
//! methodology (16 jobs, 100 repetitions).

use elastic_core::{Policy, PolicyConfig, PolicyKind, RunMetrics, SchedulingPolicy};
use hpc_metrics::{Duration, Summary};

use crate::engine::{simulate, SimConfig, SimOutcome};
use crate::model::{OverheadModel, ScalingModel};
use crate::workload::{generate_workload, WorkloadSpec};

/// Paper defaults.
pub const DEFAULT_JOBS: usize = 16;
/// Repetitions averaged per configuration (paper: 100).
pub const DEFAULT_SEEDS: u64 = 100;

/// Averaged metrics for one (policy, x) sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Sweep coordinate (submission gap or rescale gap, seconds).
    pub x: f64,
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Mean utilization across seeds.
    pub utilization: f64,
    /// Mean total time (s).
    pub total_time: f64,
    /// Mean weighted response time (s).
    pub weighted_response: f64,
    /// Mean weighted completion time (s).
    pub weighted_completion: f64,
    /// Mean bounded slowdown (τ = 10 s) across seeds.
    pub bounded_slowdown: f64,
    /// Std-dev of total time across seeds (reported for error bars).
    pub total_time_std: f64,
}

fn policy_of(kind: PolicyKind, rescale_gap_s: f64) -> Policy {
    Policy::of_kind(
        kind,
        PolicyConfig {
            rescale_gap: Duration::from_secs(rescale_gap_s),
            launcher_slots: 1,
            shrink_spares_head: true,
        },
    )
}

/// Runs one configuration over `seeds` workloads and averages.
pub fn averaged_point(
    kind: PolicyKind,
    submission_gap_s: f64,
    rescale_gap_s: f64,
    seeds: u64,
    n_jobs: usize,
    x: f64,
) -> SweepPoint {
    averaged_point_with_overhead(
        kind,
        submission_gap_s,
        rescale_gap_s,
        seeds,
        n_jobs,
        x,
        OverheadModel::default(),
    )
}

/// [`averaged_point`] under a caller-chosen rescale [`OverheadModel`]
/// — the knob behind the Fig. 8 incremental-protocol companion sweep.
pub fn averaged_point_with_overhead(
    kind: PolicyKind,
    submission_gap_s: f64,
    rescale_gap_s: f64,
    seeds: u64,
    n_jobs: usize,
    x: f64,
    overhead: OverheadModel,
) -> SweepPoint {
    let mut util = Vec::with_capacity(seeds as usize);
    let mut total = Vec::with_capacity(seeds as usize);
    let mut resp = Vec::with_capacity(seeds as usize);
    let mut comp = Vec::with_capacity(seeds as usize);
    let mut bsld = Vec::with_capacity(seeds as usize);
    for seed in 0..seeds {
        let workload =
            generate_workload(seed, n_jobs).spaced_every(Duration::from_secs(submission_gap_s));
        let cfg = SimConfig {
            overhead,
            ..SimConfig::paper_default(Box::new(policy_of(kind, rescale_gap_s)))
        };
        let out = simulate(&cfg, &workload);
        util.push(out.metrics.utilization);
        total.push(out.metrics.total_time);
        resp.push(out.metrics.weighted_response);
        comp.push(out.metrics.weighted_completion);
        bsld.push(out.metrics.mean_bounded_slowdown);
    }
    let mean = |v: &[f64]| Summary::of(v).expect("non-empty").mean;
    SweepPoint {
        x,
        policy: kind,
        utilization: mean(&util),
        total_time: mean(&total),
        weighted_response: mean(&resp),
        weighted_completion: mean(&comp),
        bounded_slowdown: mean(&bsld),
        total_time_std: Summary::of(&total).expect("non-empty").std_dev,
    }
}

/// Fig. 7: metrics vs submission gap (s), `T_rescale_gap` fixed.
pub fn sweep_submission_gap(
    gaps_s: &[f64],
    rescale_gap_s: f64,
    seeds: u64,
    n_jobs: usize,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &gap in gaps_s {
        for kind in PolicyKind::ALL {
            out.push(averaged_point(kind, gap, rescale_gap_s, seeds, n_jobs, gap));
        }
    }
    out
}

/// Fig. 8: metrics vs `T_rescale_gap` (s), submission gap fixed.
pub fn sweep_rescale_gap(
    rescale_gaps_s: &[f64],
    submission_gap_s: f64,
    seeds: u64,
    n_jobs: usize,
) -> Vec<SweepPoint> {
    sweep_rescale_gap_with_overhead(
        rescale_gaps_s,
        submission_gap_s,
        seeds,
        n_jobs,
        OverheadModel::default(),
    )
}

/// [`sweep_rescale_gap`] under a caller-chosen [`OverheadModel`].
///
/// Passing [`OverheadModel::incremental`] produces the Fig. 8
/// companion: the same `T_rescale_gap` sweep with the in-place rescale
/// protocol, where cheaper rescales flatten elastic's total-time
/// penalty and keep its utilization edge at larger gaps.
pub fn sweep_rescale_gap_with_overhead(
    rescale_gaps_s: &[f64],
    submission_gap_s: f64,
    seeds: u64,
    n_jobs: usize,
    overhead: OverheadModel,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &rgap in rescale_gaps_s {
        for kind in PolicyKind::ALL {
            out.push(averaged_point_with_overhead(
                kind,
                submission_gap_s,
                rgap,
                seeds,
                n_jobs,
                rgap,
                overhead,
            ));
        }
    }
    out
}

/// Cluster capacity of the heavy-traffic scale scenario (a trace-scale
/// cloud pool rather than the paper's 64-vCPU testbed).
pub const SCALE_CAPACITY: u32 = 4096;
/// Submission gap (s) of the heavy-traffic scale scenario, chosen so
/// arrivals roughly match the service rate of a [`SCALE_CAPACITY`]
/// cluster: the queue stays bounded (steady heavy traffic) instead of
/// growing without limit.
pub const SCALE_SUBMISSION_GAP_S: f64 = 1.5;

/// The heavy-traffic scale scenario's classic workload: `n_jobs`
/// random jobs (paper class/priority mix) at the fixed
/// [`SCALE_SUBMISSION_GAP_S`] gap.
pub fn heavy_traffic_workload(seed: u64, n_jobs: usize) -> WorkloadSpec {
    generate_workload(seed, n_jobs).spaced_every(Duration::from_secs(SCALE_SUBMISSION_GAP_S))
}

/// Replays *any* [`WorkloadSpec`] through the heavy-traffic scale
/// cluster ([`SCALE_CAPACITY`] slots, default models) — the
/// multi-thousand-job trace-replay regime of Zojer et al. rather than
/// the paper's 16-job testbed. SWF traces, Poisson workloads and the
/// classic fixed-gap scenario all come through here; the `sim_scale`
/// bench (`BENCH_sim_scale.json`) uses it to track decision-path
/// throughput.
pub fn heavy_traffic_replay(
    policy: Box<dyn SchedulingPolicy>,
    workload: &WorkloadSpec,
) -> SimOutcome {
    let cfg = SimConfig {
        capacity: SCALE_CAPACITY,
        policy,
        scaling: ScalingModel::default(),
        overhead: OverheadModel::default(),
        cancellations: Vec::new(),
    };
    simulate(&cfg, workload)
}

/// [`heavy_traffic_replay`] of the classic fixed-gap scenario
/// ([`heavy_traffic_workload`]).
pub fn heavy_traffic_run(
    policy: Box<dyn SchedulingPolicy>,
    seed: u64,
    n_jobs: usize,
) -> SimOutcome {
    heavy_traffic_replay(policy, &heavy_traffic_workload(seed, n_jobs))
}

/// Table 1 simulation column: one fixed workload (seed selectable),
/// gap = 90 s, `T_rescale_gap` = 180 s — returns the four rows plus the
/// full outcome for profile plotting.
pub fn table1_simulation(seed: u64) -> Vec<(RunMetrics, SimOutcome)> {
    let workload = generate_workload(seed, DEFAULT_JOBS).spaced_every(Duration::from_secs(90.0));
    PolicyKind::ALL
        .iter()
        .map(|&kind| {
            let cfg = SimConfig::paper_default(Box::new(policy_of(kind, 180.0)));
            let out = simulate(&cfg, &workload);
            (out.metrics.clone(), out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claims of Fig. 7 at moderate traffic, with a small
    /// seed count to keep test time low.
    #[test]
    fn elastic_wins_utilization_and_total_time() {
        let pts = sweep_submission_gap(&[90.0], 180.0, 8, DEFAULT_JOBS);
        let get = |k: PolicyKind| pts.iter().find(|p| p.policy == k).unwrap();
        let elastic = get(PolicyKind::Elastic);
        let moldable = get(PolicyKind::Moldable);
        let min = get(PolicyKind::RigidMin);
        let max = get(PolicyKind::RigidMax);
        assert!(
            elastic.utilization >= moldable.utilization,
            "elastic {} < moldable {}",
            elastic.utilization,
            moldable.utilization
        );
        assert!(min.utilization <= elastic.utilization);
        assert!(elastic.total_time <= moldable.total_time + 1e-9);
        assert!(elastic.total_time <= max.total_time + 1e-9);
        assert!(elastic.total_time <= min.total_time + 1e-9);
    }

    /// Fig. 7c: min_replicas has the lowest weighted response time.
    #[test]
    fn rigid_min_has_lowest_response_time() {
        let pts = sweep_submission_gap(&[90.0], 180.0, 8, DEFAULT_JOBS);
        let get = |k: PolicyKind| pts.iter().find(|p| p.policy == k).unwrap();
        let min = get(PolicyKind::RigidMin);
        for other in [PolicyKind::RigidMax, PolicyKind::Moldable] {
            assert!(
                min.weighted_response <= get(other).weighted_response + 1e-9,
                "min resp {} > {} resp {}",
                min.weighted_response,
                other,
                get(other).weighted_response
            );
        }
    }

    /// Fig. 7d: min_replicas has the highest completion time (slowest
    /// execution at minimum parallelism).
    #[test]
    fn rigid_min_has_highest_completion_time() {
        let pts = sweep_submission_gap(&[90.0], 180.0, 8, DEFAULT_JOBS);
        let get = |k: PolicyKind| pts.iter().find(|p| p.policy == k).unwrap();
        let min = get(PolicyKind::RigidMin);
        for other in [
            PolicyKind::Elastic,
            PolicyKind::Moldable,
            PolicyKind::RigidMax,
        ] {
            assert!(
                min.weighted_completion >= get(other).weighted_completion - 1e-9,
                "min comp {} < {} comp {}",
                min.weighted_completion,
                other,
                get(other).weighted_completion
            );
        }
    }

    /// Fig. 8: as T_rescale_gap grows, elastic converges to moldable
    /// ("the moldable scheduler is essentially the elastic scheduler
    /// that never rescales any job").
    #[test]
    fn elastic_converges_to_moldable_at_large_rescale_gap() {
        let pts = sweep_rescale_gap(&[10_000.0], 180.0, 6, DEFAULT_JOBS);
        let get = |k: PolicyKind| pts.iter().find(|p| p.policy == k).unwrap();
        let elastic = get(PolicyKind::Elastic);
        let moldable = get(PolicyKind::Moldable);
        assert!(
            (elastic.utilization - moldable.utilization).abs() < 1e-9,
            "util {} vs {}",
            elastic.utilization,
            moldable.utilization
        );
        assert!((elastic.total_time - moldable.total_time).abs() < 1e-9);
        assert!((elastic.weighted_completion - moldable.weighted_completion).abs() < 1e-9);
    }

    /// At very large submission gaps every scheduler converges: each
    /// job gets the whole cluster (Fig. 7b's right edge).
    #[test]
    fn total_times_converge_at_large_submission_gap() {
        let pts = sweep_submission_gap(&[2000.0], 180.0, 4, DEFAULT_JOBS);
        let get = |k: PolicyKind| pts.iter().find(|p| p.policy == k).unwrap();
        let e = get(PolicyKind::Elastic).total_time;
        let m = get(PolicyKind::Moldable).total_time;
        let x = get(PolicyKind::RigidMax).total_time;
        assert!((e - m).abs() / e < 0.02, "elastic {e} vs moldable {m}");
        assert!((e - x).abs() / e < 0.02, "elastic {e} vs rigid-max {x}");
        // rigid-min is the outlier: its (serial-tail) last job still
        // runs at min replicas, lagging by that job's slowdown.
        let mn = get(PolicyKind::RigidMin).total_time;
        assert!(
            mn > e + 100.0,
            "rigid-min {mn} should lag elastic {e} by the last job's slowdown"
        );
    }

    /// The trace-scale scenario behind `BENCH_sim_scale.json`: every
    /// job of a large heavy-traffic replay completes, utilization is
    /// production-like, and the event queue stays bounded.
    #[test]
    fn heavy_traffic_run_replays_trace_scale_workloads() {
        let n = 500;
        let out = heavy_traffic_run(Box::new(policy_of(PolicyKind::Elastic, 180.0)), 0, n);
        assert_eq!(out.metrics.jobs.len(), n, "every job completes");
        assert!(
            out.metrics.utilization > 0.5 && out.metrics.utilization <= 1.0,
            "scale scenario should keep the pool busy (util {})",
            out.metrics.utilization
        );
        assert!(out.rescales > 0, "elastic should rescale under load");
        assert!(
            out.peak_queue_len <= 2 * (n + 2),
            "queue must stay O(live jobs), peak {}",
            out.peak_queue_len
        );
        // FCFS drives the identical trace through the same engine.
        let fcfs = heavy_traffic_run(Box::new(elastic_core::FcfsBackfill::new()), 0, n);
        assert_eq!(fcfs.metrics.jobs.len(), n);
        assert_eq!(fcfs.rescales, 0);
    }

    /// The parameterized replay path: a Poisson (trace-shaped) arrival
    /// process drives the identical scale cluster through the same
    /// entry point as the fixed-gap scenario.
    #[test]
    fn heavy_traffic_replay_takes_arbitrary_workloads() {
        use crate::workload::poisson_workload;
        let n = 400;
        let wl = poisson_workload(0, n, Duration::from_secs(SCALE_SUBMISSION_GAP_S));
        let out = heavy_traffic_replay(Box::new(policy_of(PolicyKind::Elastic, 180.0)), &wl);
        assert_eq!(out.metrics.jobs.len(), n, "every job completes");
        assert!(out.metrics.utilization > 0.3 && out.metrics.utilization <= 1.0);
        assert!(out.metrics.mean_bounded_slowdown >= 1.0);
        // Determinism across replays of the same workload.
        let again = heavy_traffic_replay(Box::new(policy_of(PolicyKind::Elastic, 180.0)), &wl);
        assert_eq!(out.metrics, again.metrics);
        // The fixed-gap wrapper is the same path.
        let fixed = heavy_traffic_run(Box::new(policy_of(PolicyKind::Elastic, 180.0)), 0, n);
        let direct = heavy_traffic_replay(
            Box::new(policy_of(PolicyKind::Elastic, 180.0)),
            &heavy_traffic_workload(0, n),
        );
        assert_eq!(fixed.metrics, direct.metrics);
    }

    #[test]
    fn table1_returns_all_four_policies() {
        let rows = table1_simulation(0);
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|(m, _)| m.policy.as_str()).collect();
        assert!(names.contains(&"elastic"));
        assert!(names.contains(&"moldable"));
        assert!(names.contains(&"min_replicas"));
        assert!(names.contains(&"max_replicas"));
        for (m, out) in &rows {
            assert_eq!(m.jobs.len(), DEFAULT_JOBS);
            assert!(m.utilization > 0.2 && m.utilization <= 1.0);
            assert!(out.util.peak() > 0);
        }
    }
}
