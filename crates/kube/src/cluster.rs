//! The assembled control plane.
//!
//! Bundles the object stores, pod scheduler and kubelet behind one
//! `tick()`-driven facade, plus the capacity arithmetic the scheduling
//! policies consume (free slots, per-job usage). The paper's testbed —
//! 4 × c6g.4xlarge, 16 vCPUs each — is `ControlPlane::with_nodes(4, 16)`.

use std::collections::BTreeMap;
use std::sync::Arc;

use hpc_metrics::{Clock, SimTime};

use crate::api::Store;
use crate::kubelet::{Kubelet, KubeletConfig};
use crate::resources::{ConfigMap, Node, Pod, PodPhase, PodRole};
use crate::scheduler::{PodScheduler, ScheduleOutcome};

/// The in-process cluster control plane.
pub struct ControlPlane {
    /// Node store.
    pub nodes: Store<Node>,
    /// Pod store.
    pub pods: Store<Pod>,
    /// ConfigMap store (nodelists).
    pub configmaps: Store<ConfigMap>,
    scheduler: PodScheduler,
    kubelet: Kubelet,
    clock: Arc<dyn Clock>,
}

impl ControlPlane {
    /// An empty control plane on `clock` with the given kubelet model.
    pub fn new(clock: Arc<dyn Clock>, kubelet_cfg: KubeletConfig) -> Self {
        let nodes: Store<Node> = Store::new();
        let pods: Store<Pod> = Store::new();
        let configmaps: Store<ConfigMap> = Store::new();
        let scheduler = PodScheduler::new(nodes.clone(), pods.clone());
        let kubelet = Kubelet::new(pods.clone(), kubelet_cfg);
        ControlPlane {
            nodes,
            pods,
            configmaps,
            scheduler,
            kubelet,
            clock,
        }
    }

    /// A control plane pre-populated with `n` ready nodes of
    /// `cpus_per_node` CPUs each.
    pub fn with_nodes(
        clock: Arc<dyn Clock>,
        kubelet_cfg: KubeletConfig,
        n: usize,
        cpus_per_node: u32,
    ) -> Self {
        let cp = Self::new(clock, kubelet_cfg);
        for i in 0..n {
            cp.nodes
                .create(Node::new(format!("node-{i}"), cpus_per_node))
                .expect("fresh node");
        }
        cp
    }

    /// Current time on the control-plane clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The clock shared with controllers.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// One control loop round: schedule pending pods, then advance pod
    /// state machines. Returns the scheduler outcome of the round.
    pub fn tick(&mut self) -> ScheduleOutcome {
        let outcome = self.scheduler.schedule_once();
        self.kubelet.process(self.clock.now());
        outcome
    }

    /// Total CPU capacity over ready nodes.
    pub fn capacity(&self) -> u32 {
        self.nodes
            .list()
            .iter()
            .filter(|n| n.obj.ready)
            .map(|n| n.obj.cpu_capacity)
            .sum()
    }

    /// CPUs currently committed to resource-consuming pods (bound or
    /// pending-unbound both count: a pending pod's request is a claim
    /// the policies must respect).
    pub fn committed(&self) -> u32 {
        self.pods
            .list()
            .iter()
            .filter(|p| p.obj.consumes_resources())
            .map(|p| p.obj.cpu_request)
            .sum()
    }

    /// Free slots: capacity minus committed.
    pub fn free_slots(&self) -> u32 {
        self.capacity().saturating_sub(self.committed())
    }

    /// Active (running, non-terminating) worker pods per owning job.
    pub fn active_workers_by_job(&self) -> BTreeMap<String, u32> {
        let mut map = BTreeMap::new();
        for pod in self.pods.list() {
            let p = &pod.obj;
            if p.role == PodRole::Worker && p.is_active() {
                *map.entry(p.owner.clone()).or_insert(0) += 1;
            }
        }
        map
    }

    /// All resource-consuming pods owned by `job`.
    pub fn pods_of_job(&self, job: &str) -> Vec<Pod> {
        self.pods
            .list()
            .into_iter()
            .map(|s| s.obj)
            .filter(|p| p.owner == job && p.consumes_resources())
            .collect()
    }

    /// Worker slots currently committed per job (for utilization
    /// accounting; excludes launchers).
    pub fn worker_slots_by_job(&self) -> BTreeMap<String, u32> {
        let mut map = BTreeMap::new();
        for pod in self.pods.list() {
            let p = &pod.obj;
            if p.role == PodRole::Worker && p.consumes_resources() {
                *map.entry(p.owner.clone()).or_insert(0) += p.cpu_request;
            }
        }
        map
    }

    /// `true` once every pod of `job` with the given role is Running.
    pub fn job_pods_running(&self, job: &str, role: PodRole, expected: usize) -> bool {
        let running = self
            .pods
            .list()
            .iter()
            .filter(|s| {
                s.obj.owner == job
                    && s.obj.role == role
                    && s.obj.phase == PodPhase::Running
                    && !s.obj.deleting
            })
            .count();
        running >= expected
    }

    /// Requests graceful deletion of a pod (kubelet completes it).
    pub fn delete_pod(&self, name: &str) {
        let _ = self.pods.update(name, |p| p.deleting = true);
    }

    /// Removes Succeeded/Failed pods from the store (garbage collection)
    /// and returns how many were reaped.
    pub fn reap_finished(&self) -> usize {
        let mut reaped = 0;
        for pod in self.pods.list() {
            if !pod.obj.consumes_resources() {
                let _ = self.pods.delete(&pod.obj.name);
                reaped += 1;
            }
        }
        reaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_metrics::{Duration, VirtualClock};

    fn plane() -> (ControlPlane, VirtualClock) {
        let clock = VirtualClock::new();
        let cp = ControlPlane::with_nodes(Arc::new(clock.clone()), KubeletConfig::instant(), 4, 16);
        (cp, clock)
    }

    #[test]
    fn paper_testbed_capacity() {
        let (cp, _) = plane();
        assert_eq!(cp.capacity(), 64);
        assert_eq!(cp.free_slots(), 64);
        assert_eq!(cp.committed(), 0);
    }

    #[test]
    fn pod_lifecycle_through_ticks() {
        let (mut cp, clock) = plane();
        cp.pods
            .create(Pod::worker("j1-w0", "j1", cp.now()))
            .unwrap();
        cp.pods
            .create(Pod::launcher("j1-l", "j1", cp.now()))
            .unwrap();
        assert_eq!(cp.free_slots(), 62, "pending pods already claim slots");
        cp.tick();
        assert!(cp.job_pods_running("j1", PodRole::Worker, 1));
        assert!(cp.job_pods_running("j1", PodRole::Launcher, 1));
        assert_eq!(cp.active_workers_by_job()["j1"], 1);
        assert_eq!(cp.worker_slots_by_job()["j1"], 1);

        cp.delete_pod("j1-w0");
        cp.delete_pod("j1-l");
        clock.advance(Duration::from_secs(1.0));
        cp.tick();
        assert_eq!(cp.free_slots(), 64);
        assert_eq!(cp.reap_finished(), 2);
        assert!(cp.pods.is_empty());
    }

    #[test]
    fn kubelet_latency_visible_through_plane() {
        let clock = VirtualClock::new();
        let mut cp = ControlPlane::with_nodes(
            Arc::new(clock.clone()),
            KubeletConfig {
                startup_latency: Duration::from_secs(5.0),
                termination_grace: Duration::ZERO,
            },
            1,
            4,
        );
        cp.pods.create(Pod::worker("w", "j", cp.now())).unwrap();
        cp.tick(); // binds, but not yet running
        assert!(!cp.job_pods_running("j", PodRole::Worker, 1));
        clock.advance(Duration::from_secs(5.0));
        cp.tick();
        assert!(cp.job_pods_running("j", PodRole::Worker, 1));
        let pod = cp.pods.get("w").unwrap().obj;
        assert_eq!(pod.started_at, Some(SimTime::from_secs(5.0)));
    }

    #[test]
    fn capacity_excludes_unready_nodes() {
        let (cp, _) = plane();
        cp.nodes.update("node-0", |n| n.ready = false).unwrap();
        assert_eq!(cp.capacity(), 48);
    }

    #[test]
    fn oversubscription_leaves_pods_pending() {
        let clock = VirtualClock::new();
        let mut cp =
            ControlPlane::with_nodes(Arc::new(clock.clone()), KubeletConfig::instant(), 1, 2);
        for i in 0..4 {
            cp.pods
                .create(Pod::worker(format!("w{i}"), "j", cp.now()))
                .unwrap();
        }
        let out = cp.tick();
        assert_eq!(out.bound.len(), 2);
        assert_eq!(out.unschedulable.len(), 2);
        // free_slots goes negative-safe to 0 (claims exceed capacity).
        assert_eq!(cp.free_slots(), 0);
    }

    #[test]
    fn pods_of_job_filters_owner_and_liveness() {
        let (mut cp, _) = plane();
        cp.pods.create(Pod::worker("a", "j1", cp.now())).unwrap();
        cp.pods.create(Pod::worker("b", "j2", cp.now())).unwrap();
        cp.tick();
        assert_eq!(cp.pods_of_job("j1").len(), 1);
        cp.pods
            .update("a", |p| p.phase = PodPhase::Succeeded)
            .unwrap();
        assert!(cp.pods_of_job("j1").is_empty());
    }
}
