//! Cluster event log.
//!
//! A timestamped, append-only record of notable control-plane actions
//! (job admitted, pods created, rescale issued, …). The operator writes
//! to it; tests and the Fig. 9 profile regenerator read it back.

use std::sync::Arc;

use hpc_metrics::SimTime;
use parking_lot::Mutex;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When it happened.
    pub at: SimTime,
    /// Subject (job or pod name).
    pub subject: String,
    /// What happened (free-form kind, e.g. "Created", "Shrink").
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// Shared append-only event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<Mutex<Vec<Event>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(
        &self,
        at: SimTime,
        subject: impl Into<String>,
        kind: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.inner.lock().push(Event {
            at,
            subject: subject.into(),
            kind: kind.into(),
            message: message.into(),
        });
    }

    /// A snapshot of all events in record order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().clone()
    }

    /// Events of a given kind.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        self.inner
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Events concerning a subject.
    pub fn of_subject(&self, subject: &str) -> Vec<Event> {
        self.inner
            .lock()
            .iter()
            .filter(|e| e.subject == subject)
            .cloned()
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let log = EventLog::new();
        log.record(SimTime::ZERO, "j1", "Created", "16 replicas");
        log.record(SimTime::from_secs(5.0), "j1", "Shrink", "16 -> 8");
        log.record(SimTime::from_secs(9.0), "j2", "Created", "4 replicas");
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_kind("Created").len(), 2);
        assert_eq!(log.of_subject("j1").len(), 2);
        assert_eq!(log.of_subject("j1")[1].kind, "Shrink");
    }

    #[test]
    fn clones_share_storage() {
        let log = EventLog::new();
        let clone = log.clone();
        log.record(SimTime::ZERO, "x", "K", "m");
        assert_eq!(clone.len(), 1);
        assert!(!clone.is_empty());
    }

    #[test]
    fn snapshot_preserves_order() {
        let log = EventLog::new();
        for i in 0..10 {
            log.record(SimTime::from_secs(i as f64), "s", "K", format!("{i}"));
        }
        let snap = log.snapshot();
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.message, i.to_string());
        }
    }
}
