//! Built-in resource types: Node, Pod, ConfigMap.
//!
//! Pods carry the fields the paper's scheduling stack actually uses:
//! a CPU request (one vCPU per non-SMP Charm++ worker, §3.1), an owner
//! label tying worker/launcher pods to their job, an affinity group for
//! locality-aware placement, and a role distinguishing the launcher pod
//! (the `mpirun` pod of the MPI-operator pattern) from workers.

use std::collections::BTreeMap;

use hpc_metrics::SimTime;

use crate::api::Resource;

/// A worker node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Unique node name.
    pub name: String,
    /// Allocatable CPUs (slots).
    pub cpu_capacity: u32,
    /// Schedulable?
    pub ready: bool,
    /// Free-form labels.
    pub labels: BTreeMap<String, String>,
}

impl Node {
    /// A ready node with `cpu_capacity` slots.
    pub fn new(name: impl Into<String>, cpu_capacity: u32) -> Node {
        Node {
            name: name.into(),
            cpu_capacity,
            ready: true,
            labels: BTreeMap::new(),
        }
    }
}

impl Resource for Node {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Pod lifecycle phase (simplified to what the stack observes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Created; may or may not be bound to a node yet.
    Pending,
    /// Containers running.
    Running,
    /// Exited cleanly (or deleted).
    Succeeded,
    /// Crashed (fault-injection tests use this).
    Failed,
}

/// A pod's role within a job, mirroring the MPI-operator pod layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodRole {
    /// The per-job launcher (`mpirun`) pod.
    Launcher,
    /// A worker replica hosting one PE.
    Worker,
    /// Anything else (system pods in tests).
    Other,
}

/// A pod.
#[derive(Debug, Clone, PartialEq)]
pub struct Pod {
    /// Unique pod name.
    pub name: String,
    /// Owning job (empty for unowned pods).
    pub owner: String,
    /// Launcher / worker / other.
    pub role: PodRole,
    /// CPUs requested.
    pub cpu_request: u32,
    /// Affinity group: the scheduler prefers nodes already hosting pods
    /// of the same group (the operator sets this to the job name).
    pub affinity_group: Option<String>,
    /// Node the pod is bound to (set by the scheduler).
    pub node: Option<String>,
    /// Current phase (managed by the kubelet).
    pub phase: PodPhase,
    /// Deletion requested (graceful termination in progress).
    pub deleting: bool,
    /// Creation timestamp (set by the creator's clock).
    pub created_at: SimTime,
    /// When the pod became Running (kubelet).
    pub started_at: Option<SimTime>,
}

impl Pod {
    /// A pending worker pod requesting one CPU.
    pub fn worker(name: impl Into<String>, owner: impl Into<String>, created_at: SimTime) -> Pod {
        let owner = owner.into();
        Pod {
            name: name.into(),
            affinity_group: Some(owner.clone()),
            owner,
            role: PodRole::Worker,
            cpu_request: 1,
            node: None,
            phase: PodPhase::Pending,
            deleting: false,
            created_at,
            started_at: None,
        }
    }

    /// A pending launcher pod requesting one CPU.
    pub fn launcher(name: impl Into<String>, owner: impl Into<String>, created_at: SimTime) -> Pod {
        let owner = owner.into();
        Pod {
            name: name.into(),
            affinity_group: Some(owner.clone()),
            owner,
            role: PodRole::Launcher,
            cpu_request: 1,
            node: None,
            phase: PodPhase::Pending,
            deleting: false,
            created_at,
            started_at: None,
        }
    }

    /// `true` while the pod holds (or will hold) node resources.
    pub fn consumes_resources(&self) -> bool {
        !matches!(self.phase, PodPhase::Succeeded | PodPhase::Failed)
    }

    /// `true` once running and not terminating.
    pub fn is_active(&self) -> bool {
        self.phase == PodPhase::Running && !self.deleting
    }
}

impl Resource for Pod {
    fn name(&self) -> &str {
        &self.name
    }
}

/// A key-value config object (nodelist files, §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigMap {
    /// Unique name.
    pub name: String,
    /// Payload.
    pub data: BTreeMap<String, String>,
}

impl ConfigMap {
    /// An empty config map.
    pub fn new(name: impl Into<String>) -> ConfigMap {
        ConfigMap {
            name: name.into(),
            data: BTreeMap::new(),
        }
    }
}

impl Resource for ConfigMap {
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_constructors_set_roles_and_affinity() {
        let w = Pod::worker("j1-worker-0", "j1", SimTime::ZERO);
        assert_eq!(w.role, PodRole::Worker);
        assert_eq!(w.affinity_group.as_deref(), Some("j1"));
        assert_eq!(w.cpu_request, 1);
        assert_eq!(w.phase, PodPhase::Pending);
        let l = Pod::launcher("j1-launcher", "j1", SimTime::ZERO);
        assert_eq!(l.role, PodRole::Launcher);
        assert_eq!(l.owner, "j1");
    }

    #[test]
    fn resource_consumption_by_phase() {
        let mut p = Pod::worker("w", "j", SimTime::ZERO);
        assert!(p.consumes_resources());
        assert!(!p.is_active());
        p.phase = PodPhase::Running;
        assert!(p.is_active());
        p.deleting = true;
        assert!(p.consumes_resources());
        assert!(!p.is_active());
        p.phase = PodPhase::Succeeded;
        assert!(!p.consumes_resources());
        p.phase = PodPhase::Failed;
        assert!(!p.consumes_resources());
    }

    #[test]
    fn node_defaults_ready() {
        let n = Node::new("n0", 16);
        assert!(n.ready);
        assert_eq!(n.cpu_capacity, 16);
        assert_eq!(Resource::name(&n), "n0");
    }

    #[test]
    fn configmap_holds_data() {
        let mut cm = ConfigMap::new("nodelist-j1");
        cm.data.insert("hosts".into(), "pod-0\npod-1".into());
        assert_eq!(Resource::name(&cm), "nodelist-j1");
        assert!(cm.data["hosts"].contains("pod-1"));
    }
}
