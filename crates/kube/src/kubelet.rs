//! The kubelet model: pod start/stop latencies.
//!
//! Bound pods become `Running` after a configurable startup latency
//! (container image pull + start), and deletion-requested pods become
//! `Succeeded` after a grace period. Driven by explicit `process(now)`
//! calls so the same code runs under real or virtual time.

use hpc_metrics::{Duration, SimTime};

use crate::api::Store;
use crate::resources::{Pod, PodPhase};

/// Kubelet timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KubeletConfig {
    /// Bound → Running latency.
    pub startup_latency: Duration,
    /// Deletion request → Succeeded latency.
    pub termination_grace: Duration,
}

impl Default for KubeletConfig {
    fn default() -> Self {
        KubeletConfig {
            startup_latency: Duration::from_secs(1.0),
            termination_grace: Duration::from_secs(0.5),
        }
    }
}

impl KubeletConfig {
    /// A zero-latency kubelet (unit tests).
    pub fn instant() -> Self {
        KubeletConfig {
            startup_latency: Duration::ZERO,
            termination_grace: Duration::ZERO,
        }
    }
}

/// Per-pod transition bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Transition {
    due: SimTime,
    to_running: bool,
}

/// The kubelet controller (covers all nodes — per-node fidelity is not
/// needed by anything above it).
pub struct Kubelet {
    pods: Store<Pod>,
    cfg: KubeletConfig,
    inflight: std::collections::HashMap<String, Transition>,
}

impl Kubelet {
    /// A kubelet over the pod store.
    pub fn new(pods: Store<Pod>, cfg: KubeletConfig) -> Self {
        Kubelet {
            pods,
            cfg,
            inflight: std::collections::HashMap::new(),
        }
    }

    /// Advances pod state machines to `now`. Returns the names of pods
    /// that changed phase.
    pub fn process(&mut self, now: SimTime) -> Vec<String> {
        let mut changed = Vec::new();
        for stored in self.pods.list() {
            let pod = &stored.obj;
            match (pod.phase, pod.node.is_some(), pod.deleting) {
                // Bound pending pod: schedule its start.
                (PodPhase::Pending, true, false) => {
                    let t = self.inflight.entry(pod.name.clone()).or_insert(Transition {
                        due: now + self.cfg.startup_latency,
                        to_running: true,
                    });
                    if t.to_running && now >= t.due {
                        let started = now;
                        self.pods
                            .update(&pod.name, move |p| {
                                p.phase = PodPhase::Running;
                                p.started_at = Some(started);
                            })
                            .expect("pod exists");
                        self.inflight.remove(&pod.name);
                        changed.push(pod.name.clone());
                    }
                }
                // Deletion requested on a live pod: schedule termination.
                (PodPhase::Pending | PodPhase::Running, _, true) => {
                    let entry = self.inflight.entry(pod.name.clone()).or_insert(Transition {
                        due: now + self.cfg.termination_grace,
                        to_running: false,
                    });
                    // A start transition is overridden by deletion.
                    if entry.to_running {
                        *entry = Transition {
                            due: now + self.cfg.termination_grace,
                            to_running: false,
                        };
                    }
                    if now >= entry.due {
                        self.pods
                            .update(&pod.name, |p| p.phase = PodPhase::Succeeded)
                            .expect("pod exists");
                        self.inflight.remove(&pod.name);
                        changed.push(pod.name.clone());
                    }
                }
                _ => {
                    self.inflight.remove(&pod.name);
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod_bound(pods: &Store<Pod>, name: &str) {
        pods.create(Pod {
            node: Some("n0".into()),
            ..Pod::worker(name, "j", SimTime::ZERO)
        })
        .unwrap();
    }

    #[test]
    fn startup_latency_is_honored() {
        let pods: Store<Pod> = Store::new();
        pod_bound(&pods, "w");
        let mut kubelet = Kubelet::new(
            pods.clone(),
            KubeletConfig {
                startup_latency: Duration::from_secs(2.0),
                termination_grace: Duration::ZERO,
            },
        );
        assert!(kubelet.process(SimTime::from_secs(0.0)).is_empty());
        assert!(kubelet.process(SimTime::from_secs(1.9)).is_empty());
        let changed = kubelet.process(SimTime::from_secs(2.0));
        assert_eq!(changed, vec!["w".to_string()]);
        let pod = pods.get("w").unwrap().obj;
        assert_eq!(pod.phase, PodPhase::Running);
        assert_eq!(pod.started_at, Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn instant_kubelet_starts_immediately() {
        let pods: Store<Pod> = Store::new();
        pod_bound(&pods, "w");
        let mut kubelet = Kubelet::new(pods.clone(), KubeletConfig::instant());
        let changed = kubelet.process(SimTime::ZERO);
        assert_eq!(changed.len(), 1);
        assert_eq!(pods.get("w").unwrap().obj.phase, PodPhase::Running);
    }

    #[test]
    fn unbound_pods_never_start() {
        let pods: Store<Pod> = Store::new();
        pods.create(Pod::worker("w", "j", SimTime::ZERO)).unwrap();
        let mut kubelet = Kubelet::new(pods.clone(), KubeletConfig::instant());
        assert!(kubelet.process(SimTime::from_secs(100.0)).is_empty());
        assert_eq!(pods.get("w").unwrap().obj.phase, PodPhase::Pending);
    }

    #[test]
    fn deletion_terminates_after_grace() {
        let pods: Store<Pod> = Store::new();
        pod_bound(&pods, "w");
        let mut kubelet = Kubelet::new(
            pods.clone(),
            KubeletConfig {
                startup_latency: Duration::ZERO,
                termination_grace: Duration::from_secs(1.0),
            },
        );
        kubelet.process(SimTime::ZERO); // running
        pods.update("w", |p| p.deleting = true).unwrap();
        assert!(kubelet.process(SimTime::from_secs(0.5)).is_empty());
        let changed = kubelet.process(SimTime::from_secs(1.5));
        assert_eq!(changed, vec!["w".to_string()]);
        assert_eq!(pods.get("w").unwrap().obj.phase, PodPhase::Succeeded);
    }

    #[test]
    fn deletion_overrides_pending_start() {
        let pods: Store<Pod> = Store::new();
        pod_bound(&pods, "w");
        let mut kubelet = Kubelet::new(
            pods.clone(),
            KubeletConfig {
                startup_latency: Duration::from_secs(10.0),
                termination_grace: Duration::ZERO,
            },
        );
        kubelet.process(SimTime::ZERO); // start scheduled for t=10
        pods.update("w", |p| p.deleting = true).unwrap();
        kubelet.process(SimTime::from_secs(1.0));
        // Terminated without ever running.
        let pod = pods.get("w").unwrap().obj;
        assert_eq!(pod.phase, PodPhase::Succeeded);
        assert_eq!(pod.started_at, None);
    }
}
