//! The API object store.
//!
//! A minimal analogue of the Kubernetes API server: typed object stores
//! with unique names, monotonically increasing resource versions, and
//! watch streams delivering Added/Modified/Deleted events. Controllers
//! (the pod scheduler, the kubelet, the CharmJob operator) interact with
//! cluster state exclusively through this interface, which is what makes
//! the in-process substitution behaviour-preserving: the policy code
//! sees the same state-machine surface a real operator would.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Anything storable: cloneable, named, sendable.
pub trait Resource: Clone + Send + 'static {
    /// The object's unique-within-store name.
    fn name(&self) -> &str;
}

/// A stored object plus server-assigned metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Stored<T> {
    /// The object.
    pub obj: T,
    /// Server-assigned unique id (never reused).
    pub uid: u64,
    /// Bumped on every mutation.
    pub resource_version: u64,
}

/// A watch stream event.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchEvent<T> {
    /// Object created.
    Added(Stored<T>),
    /// Object mutated.
    Modified(Stored<T>),
    /// Object removed.
    Deleted(Stored<T>),
}

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// Create of an existing name.
    AlreadyExists(String),
    /// Get/update/delete of a missing name.
    NotFound(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::AlreadyExists(n) => write!(f, "object {n:?} already exists"),
            ApiError::NotFound(n) => write!(f, "object {n:?} not found"),
        }
    }
}

impl std::error::Error for ApiError {}

struct StoreInner<T> {
    objects: HashMap<String, Stored<T>>,
    watchers: Vec<Sender<WatchEvent<T>>>,
}

/// A typed object store. Cloning shares the underlying state.
pub struct Store<T: Resource> {
    inner: Arc<Mutex<StoreInner<T>>>,
    next_uid: Arc<AtomicU64>,
    next_rv: Arc<AtomicU64>,
}

impl<T: Resource> Clone for Store<T> {
    fn clone(&self) -> Self {
        Store {
            inner: Arc::clone(&self.inner),
            next_uid: Arc::clone(&self.next_uid),
            next_rv: Arc::clone(&self.next_rv),
        }
    }
}

impl<T: Resource> Default for Store<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Resource> Store<T> {
    /// An empty store.
    pub fn new() -> Self {
        Store {
            inner: Arc::new(Mutex::new(StoreInner {
                objects: HashMap::new(),
                watchers: Vec::new(),
            })),
            next_uid: Arc::new(AtomicU64::new(1)),
            next_rv: Arc::new(AtomicU64::new(1)),
        }
    }

    fn notify(inner: &mut StoreInner<T>, event: WatchEvent<T>) {
        inner.watchers.retain(|w| w.send(event.clone()).is_ok());
    }

    /// Creates `obj`; fails if the name exists.
    pub fn create(&self, obj: T) -> Result<Stored<T>, ApiError> {
        let mut inner = self.inner.lock();
        let name = obj.name().to_string();
        if inner.objects.contains_key(&name) {
            return Err(ApiError::AlreadyExists(name));
        }
        let stored = Stored {
            obj,
            uid: self.next_uid.fetch_add(1, Ordering::Relaxed),
            resource_version: self.next_rv.fetch_add(1, Ordering::Relaxed),
        };
        inner.objects.insert(name, stored.clone());
        Self::notify(&mut inner, WatchEvent::Added(stored.clone()));
        Ok(stored)
    }

    /// Fetches by name.
    pub fn get(&self, name: &str) -> Option<Stored<T>> {
        self.inner.lock().objects.get(name).cloned()
    }

    /// All objects (unspecified order).
    pub fn list(&self) -> Vec<Stored<T>> {
        self.inner.lock().objects.values().cloned().collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.lock().objects.len()
    }

    /// `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `mutate` to the named object under the store lock and
    /// bumps its resource version.
    pub fn update(&self, name: &str, mutate: impl FnOnce(&mut T)) -> Result<Stored<T>, ApiError> {
        let mut inner = self.inner.lock();
        let stored = inner
            .objects
            .get_mut(name)
            .ok_or_else(|| ApiError::NotFound(name.to_string()))?;
        mutate(&mut stored.obj);
        stored.resource_version = self.next_rv.fetch_add(1, Ordering::Relaxed);
        let snapshot = stored.clone();
        Self::notify(&mut inner, WatchEvent::Modified(snapshot.clone()));
        Ok(snapshot)
    }

    /// Removes by name, returning the last state.
    pub fn delete(&self, name: &str) -> Result<Stored<T>, ApiError> {
        let mut inner = self.inner.lock();
        let stored = inner
            .objects
            .remove(name)
            .ok_or_else(|| ApiError::NotFound(name.to_string()))?;
        Self::notify(&mut inner, WatchEvent::Deleted(stored.clone()));
        Ok(stored)
    }

    /// Opens a watch stream; events for subsequent mutations are
    /// delivered in order. (No replay of existing state — callers list
    /// first, like informers do, or use [`Store::list_watch`] to get
    /// both without a gap.)
    pub fn watch(&self) -> Receiver<WatchEvent<T>> {
        let (tx, rx) = unbounded();
        self.inner.lock().watchers.push(tx);
        rx
    }

    /// Returns the current state *and* a watch stream, atomically: every
    /// mutation is either reflected in the snapshot or delivered on the
    /// stream, never both and never neither. A separate `list()` +
    /// `watch()` pair races — an object created between the two calls is
    /// missing from the snapshot and produces no event. Informer-style
    /// consumers (the CharmJob reconciler) must use this.
    pub fn list_watch(&self) -> (Vec<Stored<T>>, Receiver<WatchEvent<T>>) {
        let mut inner = self.inner.lock();
        let snapshot = inner.objects.values().cloned().collect();
        let (tx, rx) = unbounded();
        inner.watchers.push(tx);
        (snapshot, rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Obj {
        name: String,
        value: i64,
    }

    impl Resource for Obj {
        fn name(&self) -> &str {
            &self.name
        }
    }

    fn obj(name: &str, value: i64) -> Obj {
        Obj {
            name: name.to_string(),
            value,
        }
    }

    #[test]
    fn create_get_list_delete() {
        let store: Store<Obj> = Store::new();
        let a = store.create(obj("a", 1)).unwrap();
        assert_eq!(a.uid, 1);
        assert!(store.create(obj("a", 2)).is_err());
        store.create(obj("b", 2)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a").unwrap().obj.value, 1);
        assert!(store.get("zzz").is_none());
        let deleted = store.delete("a").unwrap();
        assert_eq!(deleted.obj.value, 1);
        assert!(store.delete("a").is_err());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn update_bumps_resource_version() {
        let store: Store<Obj> = Store::new();
        let v1 = store.create(obj("a", 1)).unwrap();
        let v2 = store.update("a", |o| o.value = 42).unwrap();
        assert!(v2.resource_version > v1.resource_version);
        assert_eq!(v2.uid, v1.uid, "uid stable across updates");
        assert_eq!(store.get("a").unwrap().obj.value, 42);
        assert!(matches!(
            store.update("zzz", |_| {}),
            Err(ApiError::NotFound(_))
        ));
    }

    #[test]
    fn uids_never_reused() {
        let store: Store<Obj> = Store::new();
        let a = store.create(obj("a", 1)).unwrap();
        store.delete("a").unwrap();
        let a2 = store.create(obj("a", 1)).unwrap();
        assert_ne!(a.uid, a2.uid);
    }

    #[test]
    fn watch_delivers_lifecycle_in_order() {
        let store: Store<Obj> = Store::new();
        let rx = store.watch();
        store.create(obj("a", 1)).unwrap();
        store.update("a", |o| o.value = 2).unwrap();
        store.delete("a").unwrap();
        assert!(matches!(rx.try_recv().unwrap(), WatchEvent::Added(s) if s.obj.value == 1));
        assert!(matches!(rx.try_recv().unwrap(), WatchEvent::Modified(s) if s.obj.value == 2));
        assert!(matches!(rx.try_recv().unwrap(), WatchEvent::Deleted(_)));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_watchers_are_pruned() {
        let store: Store<Obj> = Store::new();
        let rx = store.watch();
        drop(rx);
        // Must not error or leak.
        store.create(obj("a", 1)).unwrap();
        let rx2 = store.watch();
        store.update("a", |o| o.value = 5).unwrap();
        assert!(matches!(rx2.try_recv().unwrap(), WatchEvent::Modified(_)));
    }

    #[test]
    fn clones_share_state() {
        let store: Store<Obj> = Store::new();
        let clone = store.clone();
        store.create(obj("a", 1)).unwrap();
        assert_eq!(clone.get("a").unwrap().obj.value, 1);
    }

    #[test]
    fn list_watch_has_no_gap_and_no_overlap() {
        let store: Store<Obj> = Store::new();
        store.create(obj("a", 1)).unwrap();
        store.create(obj("b", 2)).unwrap();
        let (snapshot, rx) = store.list_watch();
        store.create(obj("c", 3)).unwrap();
        store.update("a", |o| o.value = 10).unwrap();
        let mut seen: Vec<String> = snapshot.iter().map(|s| s.obj.name.clone()).collect();
        seen.sort();
        assert_eq!(seen, vec!["a", "b"], "snapshot is pre-watch state only");
        assert!(matches!(rx.try_recv().unwrap(), WatchEvent::Added(s) if s.obj.name == "c"));
        assert!(matches!(rx.try_recv().unwrap(), WatchEvent::Modified(s) if s.obj.value == 10));
        assert!(rx.try_recv().is_err(), "no replay of snapshot objects");
    }

    #[test]
    fn list_watch_atomic_under_concurrent_writes() {
        // A writer thread creates 400 objects while the reader opens
        // list_watch mid-stream: snapshot ∪ events must cover every
        // object exactly once (the race a separate list()+watch() has).
        let store: Store<Obj> = Store::new();
        let writer = {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..400 {
                    store.create(obj(&format!("o{i}"), i)).unwrap();
                    if i == 200 {
                        std::thread::yield_now();
                    }
                }
            })
        };
        // Open mid-write (roughly); correctness does not depend on when.
        std::thread::yield_now();
        let (snapshot, rx) = store.list_watch();
        writer.join().unwrap();
        let mut names: Vec<String> = snapshot.iter().map(|s| s.obj.name.clone()).collect();
        while let Ok(ev) = rx.try_recv() {
            if let WatchEvent::Added(s) = ev {
                names.push(s.obj.name.clone());
            }
        }
        names.sort();
        assert_eq!(
            names.len(),
            400,
            "every object exactly once (no gap, no overlap)"
        );
        names.dedup();
        assert_eq!(
            names.len(),
            400,
            "no duplicates between snapshot and stream"
        );
    }

    #[test]
    fn concurrent_creates_unique_uids() {
        let store: Store<Obj> = Store::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.create(obj(&format!("{t}-{i}"), 0)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut uids: Vec<u64> = store.list().iter().map(|s| s.uid).collect();
        uids.sort_unstable();
        uids.dedup();
        assert_eq!(uids.len(), 800);
    }
}
