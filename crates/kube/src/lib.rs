//! # kube-sim — an in-process simulated Kubernetes control plane
//!
//! The paper runs its operator on AWS EKS; this crate supplies the
//! control-plane surface that operator logic actually touches, entirely
//! in-process and clock-abstracted so the same code runs in wall-clock
//! experiments and deterministic virtual-time tests:
//!
//! * [`api`] — typed object stores with resource versions and watch
//!   streams (the API-server analogue).
//! * [`resources`] — `Node`, `Pod` (launcher/worker roles, affinity
//!   groups, CPU requests), `ConfigMap` (nodelists).
//! * [`scheduler`] — a filter/score pod scheduler with the pod-affinity
//!   behaviour the paper adds to the MPI operator (§3.1).
//! * [`kubelet`] — pod start/termination latency model.
//! * [`cluster`] — the assembled [`ControlPlane`]
//!   with the capacity arithmetic policies consume.
//! * [`events`] — an event log for observability and tests.
//!
//! Custom resources (the CharmJob CRD) are defined by the operator crate
//! using the same generic [`api::Store`].

#![warn(missing_docs)]

pub mod api;
pub mod cluster;
pub mod events;
pub mod kubelet;
pub mod resources;
pub mod scheduler;

pub use api::{ApiError, Resource, Store, Stored, WatchEvent};
pub use cluster::ControlPlane;
pub use events::{Event, EventLog};
pub use kubelet::{Kubelet, KubeletConfig};
pub use resources::{ConfigMap, Node, Pod, PodPhase, PodRole};
pub use scheduler::{PodScheduler, ScheduleOutcome};
