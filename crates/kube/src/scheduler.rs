//! The pod scheduler: a filter/score binding loop.
//!
//! Models kube-scheduler's two phases for the features the paper uses
//! (§3.1: default kube-scheduler plus pod affinity for locality-aware
//! placement): *filter* keeps ready nodes with enough free CPU; *score*
//! prefers nodes already hosting pods of the same affinity group
//! (keeping a job's PEs close), breaking ties toward the most-allocated
//! node (bin packing keeps large contiguous holes available for big
//! jobs), then by name for determinism.

use std::collections::HashMap;

use crate::api::Store;
use crate::resources::{Node, Pod};

/// Pod scheduler over the node/pod stores.
pub struct PodScheduler {
    nodes: Store<Node>,
    pods: Store<Pod>,
}

/// Outcome of one scheduling pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Pods bound this pass, `(pod, node)`.
    pub bound: Vec<(String, String)>,
    /// Pods left pending for lack of a feasible node.
    pub unschedulable: Vec<String>,
}

impl PodScheduler {
    /// A scheduler reading from the given stores.
    pub fn new(nodes: Store<Node>, pods: Store<Pod>) -> Self {
        PodScheduler { nodes, pods }
    }

    /// CPUs committed per node (requests of resource-consuming pods).
    fn allocations(&self) -> HashMap<String, u32> {
        let mut alloc: HashMap<String, u32> = HashMap::new();
        for pod in self.pods.list() {
            if !pod.obj.consumes_resources() {
                continue;
            }
            if let Some(node) = &pod.obj.node {
                *alloc.entry(node.clone()).or_insert(0) += pod.obj.cpu_request;
            }
        }
        alloc
    }

    /// Pods of each affinity group per node.
    fn group_presence(&self) -> HashMap<(String, String), u32> {
        let mut presence = HashMap::new();
        for pod in self.pods.list() {
            if !pod.obj.consumes_resources() {
                continue;
            }
            if let (Some(node), Some(group)) = (&pod.obj.node, &pod.obj.affinity_group) {
                *presence.entry((node.clone(), group.clone())).or_insert(0) += 1;
            }
        }
        presence
    }

    /// Runs one scheduling pass: binds every schedulable pending pod.
    ///
    /// Pods are considered in creation order (FIFO, name tie-break),
    /// like the default scheduler's queue.
    pub fn schedule_once(&self) -> ScheduleOutcome {
        let mut outcome = ScheduleOutcome::default();
        let mut pending: Vec<Pod> = self
            .pods
            .list()
            .into_iter()
            .map(|s| s.obj)
            .filter(|p| p.node.is_none() && p.consumes_resources() && !p.deleting)
            .collect();
        pending.sort_by(|a, b| {
            a.created_at
                .cmp(&b.created_at)
                .then_with(|| a.name.cmp(&b.name))
        });
        if pending.is_empty() {
            return outcome;
        }

        let nodes: Vec<Node> = self.nodes.list().into_iter().map(|s| s.obj).collect();
        let mut alloc = self.allocations();
        let mut presence = self.group_presence();

        for pod in pending {
            // Filter: ready nodes with room.
            let feasible: Vec<&Node> = nodes
                .iter()
                .filter(|n| {
                    n.ready
                        && n.cpu_capacity
                            .saturating_sub(alloc.get(&n.name).copied().unwrap_or(0))
                            >= pod.cpu_request
                })
                .collect();
            if feasible.is_empty() {
                outcome.unschedulable.push(pod.name.clone());
                continue;
            }
            // Score: affinity presence, then most-allocated, then name.
            let best = feasible
                .into_iter()
                .max_by(|a, b| {
                    let key = |n: &Node| {
                        let aff = pod
                            .affinity_group
                            .as_ref()
                            .and_then(|g| presence.get(&(n.name.clone(), g.clone())))
                            .copied()
                            .unwrap_or(0);
                        let used = alloc.get(&n.name).copied().unwrap_or(0);
                        (aff, used)
                    };
                    key(a).cmp(&key(b)).then_with(|| b.name.cmp(&a.name))
                })
                .expect("feasible non-empty");
            let node_name = best.name.clone();
            *alloc.entry(node_name.clone()).or_insert(0) += pod.cpu_request;
            if let Some(group) = &pod.affinity_group {
                *presence
                    .entry((node_name.clone(), group.clone()))
                    .or_insert(0) += 1;
            }
            let bind_target = node_name.clone();
            self.pods
                .update(&pod.name, move |p| p.node = Some(bind_target))
                .expect("pod exists");
            outcome.bound.push((pod.name, node_name));
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::PodPhase;
    use hpc_metrics::SimTime;

    fn setup(nodes: &[(&str, u32)]) -> (Store<Node>, Store<Pod>, PodScheduler) {
        let node_store: Store<Node> = Store::new();
        let pod_store: Store<Pod> = Store::new();
        for &(name, cap) in nodes {
            node_store.create(Node::new(name, cap)).unwrap();
        }
        let sched = PodScheduler::new(node_store.clone(), pod_store.clone());
        (node_store, pod_store, sched)
    }

    fn pod_at(pods: &Store<Pod>, name: &str, owner: &str, t: f64) {
        pods.create(Pod::worker(name, owner, SimTime::from_secs(t)))
            .unwrap();
    }

    #[test]
    fn binds_pending_pods_to_feasible_nodes() {
        let (_n, pods, sched) = setup(&[("n0", 2), ("n1", 2)]);
        for i in 0..4 {
            pod_at(&pods, &format!("w{i}"), "j1", i as f64);
        }
        let out = sched.schedule_once();
        assert_eq!(out.bound.len(), 4);
        assert!(out.unschedulable.is_empty());
        for s in pods.list() {
            assert!(s.obj.node.is_some());
        }
    }

    #[test]
    fn respects_capacity() {
        let (_n, pods, sched) = setup(&[("n0", 2)]);
        for i in 0..3 {
            pod_at(&pods, &format!("w{i}"), "j1", i as f64);
        }
        let out = sched.schedule_once();
        assert_eq!(out.bound.len(), 2);
        assert_eq!(out.unschedulable, vec!["w2".to_string()]);
    }

    #[test]
    fn affinity_collocates_same_job() {
        let (_n, pods, sched) = setup(&[("n0", 8), ("n1", 8)]);
        // Seed: one j1 pod bound to n1.
        pods.create(Pod {
            node: Some("n1".into()),
            phase: PodPhase::Running,
            ..Pod::worker("seed", "j1", SimTime::ZERO)
        })
        .unwrap();
        pod_at(&pods, "w1", "j1", 1.0);
        let out = sched.schedule_once();
        assert_eq!(out.bound, vec![("w1".to_string(), "n1".to_string())]);
    }

    #[test]
    fn bin_packing_prefers_fuller_node() {
        let (_n, pods, sched) = setup(&[("n0", 8), ("n1", 8)]);
        // n1 already hosts an unrelated pod: most-allocated wins.
        pods.create(Pod {
            node: Some("n1".into()),
            phase: PodPhase::Running,
            ..Pod::worker("other", "jX", SimTime::ZERO)
        })
        .unwrap();
        pod_at(&pods, "w1", "j1", 1.0);
        let out = sched.schedule_once();
        assert_eq!(out.bound[0].1, "n1");
    }

    #[test]
    fn not_ready_nodes_filtered() {
        let (nodes, pods, sched) = setup(&[("n0", 8)]);
        nodes.update("n0", |n| n.ready = false).unwrap();
        pod_at(&pods, "w1", "j1", 0.0);
        let out = sched.schedule_once();
        assert_eq!(out.unschedulable, vec!["w1".to_string()]);
    }

    #[test]
    fn finished_pods_release_capacity() {
        let (_n, pods, sched) = setup(&[("n0", 1)]);
        pods.create(Pod {
            node: Some("n0".into()),
            phase: PodPhase::Succeeded,
            ..Pod::worker("done", "j0", SimTime::ZERO)
        })
        .unwrap();
        pod_at(&pods, "w1", "j1", 1.0);
        let out = sched.schedule_once();
        assert_eq!(out.bound.len(), 1);
    }

    #[test]
    fn fifo_order_by_creation_time() {
        let (_n, pods, sched) = setup(&[("n0", 1)]);
        pod_at(&pods, "late", "j1", 10.0);
        pod_at(&pods, "early", "j1", 1.0);
        let out = sched.schedule_once();
        assert_eq!(out.bound[0].0, "early");
        assert_eq!(out.unschedulable, vec!["late".to_string()]);
    }

    #[test]
    fn deterministic_tie_break_by_node_name() {
        let (_n, pods, sched) = setup(&[("n1", 4), ("n0", 4)]);
        pod_at(&pods, "w", "j1", 0.0);
        let out = sched.schedule_once();
        assert_eq!(out.bound[0].1, "n0", "empty equal nodes: lowest name wins");
    }

    #[test]
    fn empty_cluster_everything_unschedulable() {
        let (_n, pods, sched) = setup(&[]);
        pod_at(&pods, "w", "j1", 0.0);
        let out = sched.schedule_once();
        assert_eq!(out.unschedulable.len(), 1);
    }
}
