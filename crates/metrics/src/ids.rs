//! Interned job identities.
//!
//! The scheduling hot path (policy decisions, view maintenance,
//! utilization samples) never touches job *names*: jobs are keyed by a
//! dense interned [`JobId`], assigned in admission order by whichever
//! engine owns the run (the DES uses the workload index, the operator
//! interns on admission). Names survive only at the edges — client
//! submissions, pod/store objects, and final reports — via the
//! registry kept by the engine (`elastic_core::JobRegistry`).

use std::fmt;

/// A dense, interned job identity.
///
/// `JobId`s are assigned contiguously from 0 **in admission order**, so
/// ascending `JobId` is also submission order (ties at one timestamp
/// are interned in deterministic name order). Engines index per-job
/// state with plain `Vec`s keyed by [`JobId::index`], and the final
/// component of every priority ordering key is the `JobId`, which makes
/// scheduling order fully deterministic even for jobs with equal
/// `(priority, submitted_at)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id for dense-vector slot `index`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        JobId(u32::try_from(index).expect("job index fits u32"))
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobId({})", self.0)
    }
}

/// Renders the raw number (ids are only human-meaningful next to a
/// registry, which formats `name#id` itself).
impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_index() {
        let id = JobId::from_index(42);
        assert_eq!(id, JobId(42));
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "JobId(42)");
    }

    #[test]
    fn orders_numerically() {
        assert!(JobId(2) < JobId(10));
    }
}
