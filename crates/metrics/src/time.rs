//! Instants and durations measured in seconds.
//!
//! Both the discrete-event simulator and the wall-clock operator harness
//! express time as `f64` seconds since an experiment epoch. The newtypes
//! here give those floats total ordering (via [`f64::total_cmp`]) so they
//! can live in `BinaryHeap`s and `BTreeMap`s, while staying trivially
//! convertible to plain seconds for arithmetic and reporting.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on an experiment timeline, in seconds since the epoch.
///
/// `SimTime` is totally ordered; `NaN` values are rejected at
/// construction in debug builds and compare via `total_cmp` otherwise.
#[derive(Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SimTime(f64);

/// A span between two [`SimTime`]s, in seconds. May be negative when it
/// is the result of subtracting a later instant from an earlier one.
#[derive(Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Duration(f64);

impl SimTime {
    /// The experiment epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time earlier than any real event; used as the "never acted on"
    /// sentinel for `lastAction` (see DESIGN.md §4, decision 3).
    pub const NEG_INFINITY: SimTime = SimTime(f64::NEG_INFINITY);
    /// A time later than any real event.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates an instant at `secs` seconds past the epoch.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Seconds since the epoch.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` for the `NEG_INFINITY`/`INFINITY` sentinels.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0.0);
    /// Unbounded span; used for the moldable policy's infinite
    /// `T_rescale_gap` emulation (paper §4.3.2).
    pub const INFINITY: Duration = Duration(f64::INFINITY);

    /// Creates a span of `secs` seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "Duration cannot be NaN");
        Duration(secs)
    }

    /// Creates a span of `ms` milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Duration::from_secs(ms / 1e3)
    }

    /// Length in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Converts to a `std::time::Duration`, clamping negatives to zero
    /// and saturating infinities.
    pub fn to_std(self) -> std::time::Duration {
        if self.0 <= 0.0 {
            std::time::Duration::ZERO
        } else if self.0.is_infinite() {
            std::time::Duration::MAX
        } else {
            std::time::Duration::from_secs_f64(self.0)
        }
    }

    /// Absolute value of the span.
    #[inline]
    pub fn abs(self) -> Duration {
        Duration(self.0.abs())
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Duration(d.as_secs_f64())
    }
}

impl Eq for SimTime {}
impl Eq for Duration {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Duration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_secs(10.0);
        let t1 = t0 + Duration::from_secs(5.5);
        assert_eq!(t1.as_secs(), 15.5);
        assert_eq!((t1 - t0).as_secs(), 5.5);
        assert_eq!((t0 - t1).as_secs(), -5.5);
        let mut t = t0;
        t += Duration::from_secs(1.0);
        assert_eq!(t.as_secs(), 11.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::NEG_INFINITY,
            SimTime::from_secs(-1.0),
            SimTime::INFINITY,
            SimTime::ZERO,
        ];
        v.sort();
        assert_eq!(v[0], SimTime::NEG_INFINITY);
        assert_eq!(v[4], SimTime::INFINITY);
        assert_eq!(v[1].as_secs(), -1.0);
    }

    #[test]
    fn sentinel_gap_check_never_blocks() {
        // The `lastAction = -inf` sentinel must make any finite gap pass.
        let last = SimTime::NEG_INFINITY;
        let now = SimTime::ZERO;
        let gap = Duration::from_secs(1e12);
        assert!(now - last >= gap);
    }

    #[test]
    fn infinite_gap_blocks_everything() {
        let last = SimTime::ZERO;
        let now = SimTime::from_secs(1e15);
        assert!(now - last < Duration::INFINITY);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(Duration::from_secs(2.0).as_millis(), 2000.0);
        assert_eq!(
            Duration::from_secs(-3.0).to_std(),
            std::time::Duration::ZERO
        );
        assert_eq!(
            Duration::from_secs(0.25).to_std(),
            std::time::Duration::from_millis(250)
        );
        assert_eq!(Duration::INFINITY.to_std(), std::time::Duration::MAX);
        let std = std::time::Duration::from_millis(125);
        assert_eq!(Duration::from(std).as_millis(), 125.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(!SimTime::INFINITY.is_finite());
        assert!(a.is_finite());
    }

    #[test]
    fn duration_sum_and_abs() {
        let total: Duration = [1.0, 2.0, 3.5]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .sum();
        assert_eq!(total.as_secs(), 6.5);
        assert_eq!(Duration::from_secs(-2.0).abs().as_secs(), 2.0);
    }
}
