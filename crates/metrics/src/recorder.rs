//! Recording of allocation time-series and cluster utilization.
//!
//! The paper's `track_utilization.py` samples pod occupancy over an
//! experiment and reports (a) the average cluster utilization metric of
//! Table 1 and (b) the stacked per-job profiles of Fig. 9a. The
//! [`UtilizationRecorder`] here is the exact-event equivalent: callers
//! report every allocation change (job started / rescaled / finished) and
//! the recorder integrates the step function instead of sampling it.
//!
//! Jobs are identified by interned [`JobId`]s — recording a sample is a
//! `Copy`, never a `String` clone, so the recorder sits on the
//! scheduling hot path for free. Callers that need names (the Fig. 9
//! CSV emitters) map ids back through their engine's registry at the
//! reporting edge.

use std::collections::BTreeMap;

use crate::ids::JobId;
use crate::time::{Duration, SimTime};

/// One allocation-change event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocEvent {
    /// When the change took effect.
    pub at: SimTime,
    /// Which job changed.
    pub job: JobId,
    /// The job's slot count from `at` onward (0 = released).
    pub slots: u32,
}

/// Integrates per-job slot allocations over time.
#[derive(Debug, Clone)]
pub struct UtilizationRecorder {
    capacity: u32,
    events: Vec<AllocEvent>,
}

impl UtilizationRecorder {
    /// A recorder for a cluster with `capacity` total slots.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        UtilizationRecorder {
            capacity,
            events: Vec::new(),
        }
    }

    /// Cluster capacity in slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Records that `job` holds `slots` slots from `at` onward.
    ///
    /// Events may be recorded out of order; they are sorted on read.
    #[inline]
    pub fn set(&mut self, at: SimTime, job: JobId, slots: u32) {
        self.events.push(AllocEvent { at, job, slots });
    }

    /// All recorded events, sorted by time (stable for equal times).
    pub fn events(&self) -> Vec<AllocEvent> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|a| a.at);
        ev
    }

    /// The total-allocation step function: `(t, total_slots)` at every
    /// change point, deduplicated to the last value per instant.
    pub fn total_series(&self) -> Vec<(SimTime, u32)> {
        let mut per_job: Vec<u32> = Vec::new();
        let mut running_total: u64 = 0;
        let mut out: Vec<(SimTime, u32)> = Vec::new();
        for ev in self.events() {
            if ev.job.index() >= per_job.len() {
                per_job.resize(ev.job.index() + 1, 0);
            }
            let prev = &mut per_job[ev.job.index()];
            running_total = running_total - u64::from(*prev) + u64::from(ev.slots);
            *prev = ev.slots;
            let total = u32::try_from(running_total).expect("total slots fit u32");
            match out.last_mut() {
                Some(last) if last.0 == ev.at => last.1 = total,
                _ => out.push((ev.at, total)),
            }
        }
        out
    }

    /// Per-job step functions, keyed by job id.
    pub fn per_job_series(&self) -> BTreeMap<JobId, Vec<(SimTime, u32)>> {
        let mut map: BTreeMap<JobId, Vec<(SimTime, u32)>> = BTreeMap::new();
        for ev in self.events() {
            let series = map.entry(ev.job).or_default();
            match series.last_mut() {
                Some(last) if last.0 == ev.at => last.1 = ev.slots,
                _ => series.push((ev.at, ev.slots)),
            }
        }
        map
    }

    /// Average utilization (fraction of capacity in use) over `[from, to]`.
    ///
    /// Returns 0 for an empty or zero-length window.
    pub fn average_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let window = (to - from).as_secs();
        if window <= 0.0 {
            return 0.0;
        }
        let series = self.total_series();
        let mut used_slot_seconds = 0.0;
        let mut current: u32 = 0;
        let mut cursor = from;
        for (t, total) in series {
            if t <= from {
                current = total;
                continue;
            }
            if t >= to {
                break;
            }
            used_slot_seconds += (t - cursor).as_secs() * f64::from(current);
            cursor = t;
            current = total;
        }
        used_slot_seconds += (to - cursor).as_secs() * f64::from(current);
        used_slot_seconds / (window * f64::from(self.capacity))
    }

    /// Utilization over the natural window: first event to `end`.
    pub fn utilization_until(&self, end: SimTime) -> f64 {
        match self.events().first() {
            Some(first) => self.average_utilization(first.at, end),
            None => 0.0,
        }
    }

    /// Maximum total allocation ever recorded.
    pub fn peak(&self) -> u32 {
        self.total_series()
            .iter()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0)
    }
}

/// A plain `(t, value)` time series with helpers used by the figure
/// regenerators (per-iteration times, replica-count evolution, …).
#[derive(Debug, Clone, Default)]
pub struct SeriesRecorder {
    points: Vec<(SimTime, f64)>,
}

impl SeriesRecorder {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Converts to `(seconds, value)` pairs for charting/CSV.
    pub fn as_xy(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|&(t, v)| (t.as_secs(), v)).collect()
    }

    /// Largest gap between consecutive points — the Fig. 6b "rescale
    /// gap" detector.
    pub fn largest_gap(&self) -> Option<(SimTime, Duration)> {
        self.points
            .windows(2)
            .map(|w| (w[0].0, w[1].0 - w[0].0))
            .max_by(|a, b| a.1.cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    const A: JobId = JobId(0);
    const B: JobId = JobId(1);

    #[test]
    fn single_job_full_window() {
        let mut r = UtilizationRecorder::new(10);
        r.set(t(0.0), A, 5);
        r.set(t(10.0), A, 0);
        assert!((r.average_utilization(t(0.0), t(10.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rescale_changes_integral() {
        let mut r = UtilizationRecorder::new(10);
        r.set(t(0.0), A, 10);
        r.set(t(5.0), A, 2); // shrink at t=5
        r.set(t(10.0), A, 0);
        // 5s at 10 slots + 5s at 2 slots = 60 slot-seconds of 100.
        assert!((r.average_utilization(t(0.0), t(10.0)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overlapping_jobs_sum() {
        let mut r = UtilizationRecorder::new(4);
        r.set(t(0.0), A, 2);
        r.set(t(2.0), B, 2);
        r.set(t(4.0), A, 0);
        r.set(t(6.0), B, 0);
        // [0,2): 2, [2,4): 4, [4,6): 2 => 16 slot-s of 24.
        let u = r.average_utilization(t(0.0), t(6.0));
        assert!((u - 16.0 / 24.0).abs() < 1e-12);
        assert_eq!(r.peak(), 4);
    }

    #[test]
    fn window_clips_events_outside() {
        let mut r = UtilizationRecorder::new(2);
        r.set(t(0.0), A, 2);
        r.set(t(100.0), A, 0);
        // Query a window strictly inside the allocation.
        assert!((r.average_utilization(t(10.0), t(20.0)) - 1.0).abs() < 1e-12);
        // Query a window after release.
        assert_eq!(r.average_utilization(t(100.0), t(110.0)), 0.0);
    }

    #[test]
    fn out_of_order_events_are_sorted() {
        let mut r = UtilizationRecorder::new(4);
        r.set(t(5.0), A, 0);
        r.set(t(0.0), A, 4);
        assert!((r.average_utilization(t(0.0), t(10.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_recorder_reports_zero() {
        let r = UtilizationRecorder::new(8);
        assert_eq!(r.average_utilization(t(0.0), t(1.0)), 0.0);
        assert_eq!(r.utilization_until(t(5.0)), 0.0);
        assert_eq!(r.peak(), 0);
    }

    #[test]
    fn zero_length_window_is_zero() {
        let mut r = UtilizationRecorder::new(8);
        r.set(t(0.0), A, 8);
        assert_eq!(r.average_utilization(t(1.0), t(1.0)), 0.0);
    }

    #[test]
    fn total_series_merges_same_instant() {
        let mut r = UtilizationRecorder::new(8);
        r.set(t(0.0), A, 4);
        r.set(t(0.0), B, 2);
        let s = r.total_series();
        assert_eq!(s, vec![(t(0.0), 6)]);
    }

    #[test]
    fn per_job_series_tracks_each_job() {
        let mut r = UtilizationRecorder::new(8);
        r.set(t(0.0), A, 4);
        r.set(t(1.0), B, 2);
        r.set(t(2.0), A, 6);
        let m = r.per_job_series();
        assert_eq!(m[&A], vec![(t(0.0), 4), (t(2.0), 6)]);
        assert_eq!(m[&B], vec![(t(1.0), 2)]);
    }

    #[test]
    fn sparse_job_ids_are_fine() {
        // Ids need not be contiguous from the recorder's point of view.
        let mut r = UtilizationRecorder::new(8);
        r.set(t(0.0), JobId(7), 3);
        r.set(t(2.0), JobId(7), 0);
        assert_eq!(r.peak(), 3);
        assert!((r.average_utilization(t(0.0), t(4.0)) - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = UtilizationRecorder::new(0);
    }

    #[test]
    fn series_recorder_basics() {
        let mut s = SeriesRecorder::new();
        assert!(s.is_empty());
        s.push(t(0.0), 1.0);
        s.push(t(1.0), 2.0);
        s.push(t(5.0), 3.0); // 4s gap
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_xy()[2], (5.0, 3.0));
        let (at, gap) = s.largest_gap().unwrap();
        assert_eq!(at, t(1.0));
        assert_eq!(gap.as_secs(), 4.0);
    }
}
