//! Pluggable clocks.
//!
//! The operator, the simulated Kubernetes control plane and the policy
//! engine never call `Instant::now()` directly; they read a [`Clock`].
//! The "actual" experiments (Fig. 9, Table 1 left columns) run on a
//! [`RealClock`], optionally time-compressed; the simulator and most
//! tests run on a [`VirtualClock`] that only moves when told to, which
//! makes scheduling decisions fully deterministic.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::time::{Duration, SimTime};

/// A source of experiment time.
pub trait Clock: Send + Sync {
    /// Current instant on this clock's timeline.
    fn now(&self) -> SimTime;

    /// Blocks the calling thread until `deadline` (no-op if already past).
    ///
    /// On a [`VirtualClock`] this parks the thread until some other
    /// thread advances time past the deadline, which lets wall-clock
    /// style code run unmodified under virtual time.
    fn sleep_until(&self, deadline: SimTime);

    /// Convenience: sleeps for `d` from now.
    fn sleep(&self, d: Duration) {
        let deadline = self.now() + d;
        self.sleep_until(deadline);
    }
}

/// Shared handle to a clock.
pub type ClockRef = Arc<dyn Clock>;

/// Wall-clock time relative to an epoch captured at construction, with an
/// optional compression factor.
///
/// With `compression = k`, one wall-clock second reads as `k` experiment
/// seconds. The paper's experimental campaign uses a 90 s submission gap
/// and a 180 s rescale gap over ~50 min per scheduler; compression lets
/// the same configuration execute in minutes while all policy-visible
/// ratios (gap : overhead : runtime) are preserved because *every* time
/// the policy reads passes through the same clock.
pub struct RealClock {
    epoch: Instant,
    compression: f64,
}

impl RealClock {
    /// A clock where experiment seconds equal wall seconds.
    pub fn new() -> Self {
        Self::with_compression(1.0)
    }

    /// A clock where one wall second reads as `compression` experiment
    /// seconds. `compression` must be positive and finite.
    pub fn with_compression(compression: f64) -> Self {
        assert!(
            compression.is_finite() && compression > 0.0,
            "compression must be positive and finite, got {compression}"
        );
        RealClock {
            epoch: Instant::now(),
            compression,
        }
    }

    /// The configured compression factor.
    pub fn compression(&self) -> f64 {
        self.compression
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime::from_secs(self.epoch.elapsed().as_secs_f64() * self.compression)
    }

    fn sleep_until(&self, deadline: SimTime) {
        loop {
            let now = self.now();
            if now >= deadline {
                return;
            }
            let wall = (deadline - now).as_secs() / self.compression;
            std::thread::sleep(std::time::Duration::from_secs_f64(wall.min(0.050)));
        }
    }
}

struct VirtualState {
    now: SimTime,
}

/// A clock that advances only under program control.
///
/// Cloning the handle shares the underlying timeline. Sleeping threads
/// are woken whenever the time is advanced past their deadline.
#[derive(Clone)]
pub struct VirtualClock {
    state: Arc<(Mutex<VirtualState>, Condvar)>,
}

impl VirtualClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// A virtual clock starting at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        VirtualClock {
            state: Arc::new((Mutex::new(VirtualState { now: start }), Condvar::new())),
        }
    }

    /// Moves time forward by `d`. Panics if `d` is negative.
    pub fn advance(&self, d: Duration) {
        assert!(d.as_secs() >= 0.0, "cannot advance time backwards");
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        st.now += d;
        cvar.notify_all();
    }

    /// Jumps time to `t`. Panics if `t` is in the past.
    pub fn advance_to(&self, t: SimTime) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        assert!(t >= st.now, "cannot advance time backwards");
        st.now = t;
        cvar.notify_all();
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        self.state.0.lock().now
    }

    fn sleep_until(&self, deadline: SimTime) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        while st.now < deadline {
            cvar.wait(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_monotone() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn real_clock_compression_scales_readings() {
        let c = RealClock::with_compression(100.0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        // 20ms wall should read as >= 2 experiment-seconds.
        assert!(c.now().as_secs() >= 2.0, "got {}", c.now());
        assert_eq!(c.compression(), 100.0);
    }

    #[test]
    #[should_panic(expected = "compression must be positive")]
    fn real_clock_rejects_zero_compression() {
        let _ = RealClock::with_compression(0.0);
    }

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(Duration::from_secs(10.0));
        assert_eq!(c.now().as_secs(), 10.0);
        c.advance_to(SimTime::from_secs(25.0));
        assert_eq!(c.now().as_secs(), 25.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_backwards_jump() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(5.0));
        c.advance_to(SimTime::from_secs(1.0));
    }

    #[test]
    fn virtual_clock_clones_share_timeline() {
        let c1 = VirtualClock::new();
        let c2 = c1.clone();
        c1.advance(Duration::from_secs(3.0));
        assert_eq!(c2.now().as_secs(), 3.0);
    }

    #[test]
    fn virtual_sleep_wakes_on_advance() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            c2.sleep_until(SimTime::from_secs(5.0));
            c2.now()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        c.advance(Duration::from_secs(5.0));
        let woke_at = h.join().unwrap();
        assert!(woke_at.as_secs() >= 5.0);
    }

    #[test]
    fn real_sleep_until_past_deadline_returns_immediately() {
        let c = RealClock::new();
        let t = c.now();
        c.sleep_until(t); // already past; must not hang
        c.sleep(Duration::from_secs(-1.0));
    }

    #[test]
    fn clock_trait_object_usable() {
        let c: ClockRef = Arc::new(VirtualClock::new());
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
