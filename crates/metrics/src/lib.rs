//! Shared measurement infrastructure for the `elastic-hpc` workspace.
//!
//! This crate is dependency-light on purpose: every other crate in the
//! workspace (the Charm++-like runtime, the simulated Kubernetes control
//! plane, the scheduler and the discrete-event simulator) builds on the
//! same notion of time, the same interpolation utilities and the same
//! metric definitions, so that "actual" (wall-clock) and "simulated"
//! (virtual-clock) experiments report numbers that are directly
//! comparable — exactly the Actual-vs-Simulation comparison of Table 1 of
//! the paper.
//!
//! Contents:
//!
//! * [`time`] — [`SimTime`] instants and durations in
//!   seconds, totally ordered and hashable.
//! * [`clock`] — the [`Clock`] trait with a wall-clock
//!   implementation ([`RealClock`]) and a manually
//!   advanced one ([`VirtualClock`]).
//! * [`ids`] — the interned [`JobId`] every hot-path structure is
//!   keyed by (names live only at the engines' edges).
//! * [`interp`] — piecewise-linear interpolation (linear and log–log),
//!   used to model strong-scaling curves and rescale overheads the same
//!   way the paper's simulator does (§4.3.1).
//! * [`recorder`] — utilization and time-series recorders that back the
//!   cluster-utilization metric and the Fig. 9 profiles.
//! * [`stats`] — weighted means (response/completion times weighted by
//!   job priority) and simple summary statistics.
//! * [`csv`] — a minimal CSV emitter for experiment outputs.
//! * [`ascii`] — terminal line/stack charts so every figure regenerator
//!   can render its result without a plotting stack.

#![warn(missing_docs)]

pub mod ascii;
pub mod clock;
pub mod csv;
pub mod ids;
pub mod interp;
pub mod recorder;
pub mod stats;
pub mod time;

pub use clock::{Clock, ClockRef, RealClock, VirtualClock};
pub use ids::JobId;
pub use interp::PiecewiseLinear;
pub use recorder::{SeriesRecorder, UtilizationRecorder};
pub use stats::{Summary, WeightedMean};
pub use time::{Duration, SimTime};
