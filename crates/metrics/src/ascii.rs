//! Terminal charts.
//!
//! The benchmark binaries regenerate the paper's figures as data (CSV)
//! plus a quick-look ASCII rendering, so results are inspectable without
//! a plotting stack. Three chart kinds cover every figure in the paper:
//! multi-series line charts (Figs. 4–8), step profiles (Fig. 9), and
//! labelled horizontal bars (Table 1 quick-looks).

use std::fmt::Write as _;

/// Glyphs assigned to series, in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders a multi-series scatter/line chart onto a `width`×`height`
/// character grid. Each series is `(label, points)`; points are `(x, y)`.
///
/// Axis ranges are computed over all series; y can optionally be drawn
/// in log scale (positive values only), matching the paper's log-scale
/// overhead and scaling plots.
pub fn line_chart(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
    log_y: bool,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut all = series.iter().flat_map(|(_, pts)| pts.iter().copied());
    let Some(first) = all.next() else {
        return format!("{title}\n  (no data)\n");
    };
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (first.0, first.0, first.1, first.1);
    for (x, y) in all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if log_y {
        ymin = ymin.max(1e-12);
        ymax = ymax.max(ymin * 10.0);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }

    let ty = |y: f64| -> f64 {
        if log_y {
            (y.max(1e-12)).ln()
        } else {
            y
        }
    };
    let (tymin, tymax) = (ty(ymin), ty(ymax));

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts {
            if log_y && y <= 0.0 {
                continue;
            }
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((ty(y) - tymin) / (tymax - tymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  y: [{ymin:.4}, {ymax:.4}]{}",
        if log_y { " (log)" } else { "" }
    );
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  |{line}|");
    }
    let _ = writeln!(out, "  x: [{xmin:.2}, {xmax:.2}]");
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "    {} {}", GLYPHS[si % GLYPHS.len()], label);
    }
    out
}

/// Renders a horizontal bar: `value` out of `max`, `width` cells wide.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let width = width.max(1);
    let frac = if max > 0.0 {
        (value / max).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// Renders a step-function utilization profile (Fig. 9a style): one
/// row of blocks sampled at `cols` points over `[t0, t1]`.
pub fn step_profile(
    label: &str,
    series: &[(f64, f64)],
    t0: f64,
    t1: f64,
    max_value: f64,
    cols: usize,
) -> String {
    let cols = cols.max(8);
    let mut out = String::new();
    let _ = write!(out, "{label:>14} |");
    for c in 0..cols {
        let t = t0 + (t1 - t0) * (c as f64 + 0.5) / cols as f64;
        // Value of the step function at time t.
        let mut v = 0.0;
        for &(st, sv) in series {
            if st <= t {
                v = sv;
            } else {
                break;
            }
        }
        let frac = if max_value > 0.0 {
            (v / max_value).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let ch = match (frac * 8.0).round() as usize {
            0 => ' ',
            1 => '▁',
            2 => '▂',
            3 => '▃',
            4 => '▄',
            5 => '▅',
            6 => '▆',
            7 => '▇',
            _ => '█',
        };
        out.push(ch);
    }
    out.push('|');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_title_axes_and_legend() {
        let s = line_chart(
            "demo",
            &[("a", vec![(0.0, 1.0), (1.0, 2.0)]), ("b", vec![(0.5, 1.5)])],
            40,
            8,
            false,
        );
        assert!(s.contains("demo"));
        assert!(s.contains("* a"));
        assert!(s.contains("o b"));
        assert!(s.contains("x: [0.00, 1.00]"));
    }

    #[test]
    fn chart_handles_empty_and_degenerate_input() {
        assert!(line_chart("t", &[], 40, 8, false).contains("(no data)"));
        // Single point: must not divide by zero.
        let s = line_chart("t", &[("a", vec![(1.0, 1.0)])], 40, 8, false);
        assert!(s.contains('*'));
    }

    #[test]
    fn log_chart_skips_nonpositive_points() {
        let s = line_chart("t", &[("a", vec![(0.0, 0.0), (1.0, 10.0)])], 40, 8, true);
        // Only one glyph plotted (the positive one).
        let stars = s.matches('*').count();
        assert_eq!(stars, 2); // one in grid, one in legend
    }

    #[test]
    fn bar_renders_fraction() {
        assert_eq!(bar(0.5, 1.0, 10), "█████·····");
        assert_eq!(bar(2.0, 1.0, 4), "████"); // clamped
        assert_eq!(bar(1.0, 0.0, 4), "····"); // zero max
    }

    #[test]
    fn step_profile_samples_step_function() {
        let s = step_profile("job", &[(0.0, 8.0), (5.0, 0.0)], 0.0, 10.0, 8.0, 10);
        // First half full blocks, second half spaces.
        assert!(s.contains('█'));
        assert!(s.contains(' '));
        assert!(s.starts_with("           job |"));
    }
}
