//! Weighted means and summary statistics.
//!
//! The paper evaluates schedulers on *weighted mean response time* and
//! *weighted mean completion time*, weighting each job's time by its
//! user-assigned priority (§4.3): a priority-5 job's wait counts five
//! times as much as a priority-1 job's. [`WeightedMean`] implements that
//! metric; [`Summary`] aggregates repeated simulation runs (the paper
//! averages 100 random workloads per configuration).

use crate::time::Duration;

/// Incremental weighted mean: `sum(w*x) / sum(w)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedMean {
    weighted_sum: f64,
    weight_total: f64,
    count: usize,
}

impl WeightedMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation `x` with weight `w` (must be non-negative).
    pub fn add(&mut self, w: f64, x: f64) {
        assert!(w >= 0.0 && w.is_finite(), "weight must be finite and >= 0");
        self.weighted_sum += w * x;
        self.weight_total += w;
        self.count += 1;
    }

    /// Adds a duration observation with weight `w`.
    pub fn add_duration(&mut self, w: f64, d: Duration) {
        self.add(w, d.as_secs());
    }

    /// The weighted mean, or `None` if total weight is zero.
    pub fn mean(&self) -> Option<f64> {
        (self.weight_total > 0.0).then(|| self.weighted_sum / self.weight_total)
    }

    /// The weighted mean, defaulting to 0 when empty.
    pub fn mean_or_zero(&self) -> f64 {
        self.mean().unwrap_or(0.0)
    }

    /// Number of observations added.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Summary statistics of a sample: mean, standard deviation, extrema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes `values`; returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_degenerates_to_mean() {
        let mut m = WeightedMean::new();
        for x in [1.0, 2.0, 3.0] {
            m.add(1.0, x);
        }
        assert_eq!(m.mean(), Some(2.0));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn priority_weighting_matches_paper_definition() {
        // Two jobs: priority 5 waits 100s, priority 1 waits 700s.
        // Weighted mean = (5*100 + 1*700) / 6 = 200.
        let mut m = WeightedMean::new();
        m.add(5.0, 100.0);
        m.add(1.0, 700.0);
        assert_eq!(m.mean(), Some(200.0));
    }

    #[test]
    fn zero_weight_observations_do_not_affect_mean() {
        let mut m = WeightedMean::new();
        m.add(0.0, 1e9);
        assert_eq!(m.mean(), None);
        assert_eq!(m.mean_or_zero(), 0.0);
        m.add(2.0, 10.0);
        assert_eq!(m.mean(), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "weight must be finite")]
    fn negative_weight_rejected() {
        WeightedMean::new().add(-1.0, 1.0);
    }

    #[test]
    fn add_duration_uses_seconds() {
        let mut m = WeightedMean::new();
        m.add_duration(2.0, Duration::from_secs(30.0));
        assert_eq!(m.mean(), Some(30.0));
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_edge_cases() {
        assert!(Summary::of(&[]).is_none());
        let one = Summary::of(&[3.0]).unwrap();
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.min, 3.0);
        assert_eq!(one.max, 3.0);
    }
}
