//! Piecewise-linear interpolation.
//!
//! The paper's simulator (§4.3.1) models both the per-iteration runtime
//! of a job at a given replica count and the rescale overhead "using a
//! piecewise linear function" over measured anchor points. This module
//! provides that function in two flavours: plain linear, and linear in
//! log–log space (the natural space for strong-scaling curves, which are
//! close to straight lines on the paper's log–log plots in Fig. 4).

use serde::{Deserialize, Serialize};

/// A piecewise-linear function defined by `(x, y)` anchor points.
///
/// Evaluation between anchors interpolates linearly; outside the anchor
/// range the nearest segment is extended (linear extrapolation), which
/// matches how a scaling model calibrated on 4–64 replicas must still
/// produce values at 2 replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
    log_log: bool,
}

impl PiecewiseLinear {
    /// Builds a linear-space interpolant. Points are sorted by `x`;
    /// panics if fewer than one point or if two points share an `x`.
    pub fn new(points: impl Into<Vec<(f64, f64)>>) -> Self {
        Self::build(points.into(), false)
    }

    /// Builds a log–log interpolant: straight lines between anchors in
    /// `(ln x, ln y)` space. All coordinates must be strictly positive.
    pub fn log_log(points: impl Into<Vec<(f64, f64)>>) -> Self {
        let pts = points.into();
        assert!(
            pts.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
            "log-log interpolation requires positive coordinates"
        );
        Self::build(pts, true)
    }

    fn build(mut points: Vec<(f64, f64)>, log_log: bool) -> Self {
        assert!(!points.is_empty(), "need at least one anchor point");
        assert!(
            points.iter().all(|p| p.0.is_finite() && p.1.is_finite()),
            "anchor points must be finite"
        );
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate x anchor {}", w[0].0);
        }
        PiecewiseLinear { points, log_log }
    }

    /// The anchor points, sorted by `x`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the interpolant at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.points.len() == 1 {
            return self.points[0].1;
        }
        let (tx, transform_back): (f64, fn(f64) -> f64) = if self.log_log {
            assert!(x > 0.0, "log-log eval requires x > 0, got {x}");
            (x.ln(), |v| v.exp())
        } else {
            (x, |v| v)
        };
        let coord = |p: (f64, f64)| -> (f64, f64) {
            if self.log_log {
                (p.0.ln(), p.1.ln())
            } else {
                p
            }
        };
        // Pick the segment: clamp to the first/last for extrapolation.
        let idx = match self.points.binary_search_by(|p| coord(*p).0.total_cmp(&tx)) {
            Ok(i) => return self.points[i].1,
            Err(0) => 0,
            Err(i) if i >= self.points.len() => self.points.len() - 2,
            Err(i) => i - 1,
        };
        let (x0, y0) = coord(self.points[idx]);
        let (x1, y1) = coord(self.points[idx + 1]);
        let t = (tx - x0) / (x1 - x0);
        transform_back(y0 + t * (y1 - y0))
    }

    /// Evaluates and clamps the result to be at least `floor` — useful
    /// for time models where extrapolation must never go non-positive.
    pub fn eval_clamped(&self, x: f64, floor: f64) -> f64 {
        self.eval(x).max(floor)
    }

    /// `true` if `y` never increases as `x` increases over the anchors
    /// (the expected shape of a strong-scaling time curve).
    pub fn is_non_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1)
    }

    /// Domain of the anchors as `(x_min, x_max)`.
    pub fn domain(&self) -> (f64, f64) {
        (
            self.points.first().unwrap().0,
            self.points.last().unwrap().0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_point_is_constant() {
        let f = PiecewiseLinear::new(vec![(4.0, 7.0)]);
        assert_eq!(f.eval(0.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn interpolates_exactly_at_anchors() {
        let f = PiecewiseLinear::new(vec![(1.0, 10.0), (2.0, 20.0), (4.0, 10.0)]);
        assert_eq!(f.eval(1.0), 10.0);
        assert_eq!(f.eval(2.0), 20.0);
        assert_eq!(f.eval(4.0), 10.0);
    }

    #[test]
    fn interpolates_linearly_between_anchors() {
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(f.eval(2.5), 25.0);
        assert_eq!(f.eval(7.5), 75.0);
    }

    #[test]
    fn extrapolates_on_end_segments() {
        let f = PiecewiseLinear::new(vec![(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(f.eval(3.0), 3.0);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval_clamped(-5.0, 0.001), 0.001);
    }

    #[test]
    fn sorts_unsorted_input() {
        let f = PiecewiseLinear::new(vec![(4.0, 1.0), (1.0, 4.0)]);
        assert_eq!(f.domain(), (1.0, 4.0));
        assert_eq!(f.eval(2.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "duplicate x anchor")]
    fn rejects_duplicate_x() {
        let _ = PiecewiseLinear::new(vec![(1.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn log_log_ideal_scaling_is_exact() {
        // t(p) = 64/p is a straight line in log-log space; interpolating
        // between p=4 and p=64 must recover intermediate values exactly.
        let f = PiecewiseLinear::log_log(vec![(4.0, 16.0), (64.0, 1.0)]);
        assert!((f.eval(8.0) - 8.0).abs() < 1e-9);
        assert!((f.eval(16.0) - 4.0).abs() < 1e-9);
        assert!((f.eval(32.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn log_log_extrapolates_powers() {
        let f = PiecewiseLinear::log_log(vec![(4.0, 16.0), (64.0, 1.0)]);
        assert!((f.eval(2.0) - 32.0).abs() < 1e-9);
        assert!((f.eval(128.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn log_log_rejects_nonpositive() {
        let _ = PiecewiseLinear::log_log(vec![(0.0, 1.0), (1.0, 1.0)]);
    }

    #[test]
    fn monotonicity_detector() {
        let dec = PiecewiseLinear::new(vec![(1.0, 10.0), (2.0, 5.0), (4.0, 5.0)]);
        assert!(dec.is_non_increasing());
        let bump = PiecewiseLinear::new(vec![(1.0, 10.0), (2.0, 11.0)]);
        assert!(!bump.is_non_increasing());
    }

    proptest! {
        #[test]
        fn eval_between_anchor_extremes(
            anchors in proptest::collection::btree_map(0u32..1000, 0.0f64..1e6, 2..8),
            q in 0.0f64..1000.0,
        ) {
            let pts: Vec<(f64, f64)> =
                anchors.into_iter().map(|(x, y)| (x as f64, y)).collect();
            let f = PiecewiseLinear::new(pts.clone());
            let (lo, hi) = f.domain();
            let q = lo + (hi - lo) * (q / 1000.0);
            let y = f.eval(q);
            let ymin = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let ymax = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
            // Inside the domain, interpolation never escapes the hull.
            prop_assert!(y >= ymin - 1e-9 && y <= ymax + 1e-9);
        }

        #[test]
        fn anchors_reproduced(
            anchors in proptest::collection::btree_map(1u32..100, 0.5f64..100.0, 2..6),
        ) {
            let pts: Vec<(f64, f64)> =
                anchors.into_iter().map(|(x, y)| (x as f64, y)).collect();
            let lin = PiecewiseLinear::new(pts.clone());
            let ll = PiecewiseLinear::log_log(pts.clone());
            for &(x, y) in &pts {
                prop_assert!((lin.eval(x) - y).abs() < 1e-9);
                prop_assert!((ll.eval(x) - y).abs() / y < 1e-9);
            }
        }
    }
}
