//! A minimal CSV emitter.
//!
//! Every figure regenerator writes its data as CSV next to printing an
//! ASCII chart, so results can be re-plotted with any external tool.
//! Hand-rolled (rather than pulling in a csv crate) because the outputs
//! are simple numeric tables and the workspace keeps its dependency list
//! to the approved set.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone)]
pub struct CsvTable {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        assert!(!columns.is_empty(), "CSV table needs at least one column");
        CsvTable {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells; panics if the arity doesn't match the header.
    pub fn row<S: ToString>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
        self
    }

    /// Appends a row of f64 cells formatted with 6 significant digits.
    pub fn row_f64(&mut self, cells: impl IntoIterator<Item = f64>) -> &mut Self {
        self.row(cells.into_iter().map(|v| format!("{v:.6}")))
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a CSV string (RFC-4180 quoting for cells
    /// containing commas, quotes or newlines).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    let escaped = cell.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories as needed.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(["x", "y"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv_string(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn quotes_special_cells() {
        let mut t = CsvTable::new(["name"]);
        t.row(["a,b"]).row(["say \"hi\""]).row(["two\nlines"]);
        let s = t.to_csv_string();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
        assert!(s.contains("\"two\nlines\""));
    }

    #[test]
    fn row_f64_formats_numbers() {
        let mut t = CsvTable::new(["v", "w"]);
        t.row_f64([1.0, 0.5]);
        assert_eq!(t.to_csv_string(), "v,w\n1.000000,0.500000\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_mismatched_row() {
        CsvTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("elastic-hpc-csv-test");
        let path = dir.join("nested").join("out.csv");
        let mut t = CsvTable::new(["a"]);
        t.row(["1"]);
        t.write_to(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
